#include "core/pipeline/plan_builder.h"

#include <memory>

#include "core/pipeline/bitmap_filter_operator.h"
#include "core/pipeline/candidate_gen_operator.h"
#include "core/pipeline/dedup_emit_operator.h"
#include "core/pipeline/pipelined_scan_operator.h"
#include "core/pipeline/siggen_operator.h"
#include "core/pipeline/spill_partition_operator.h"
#include "core/pipeline/verify_operator.h"

namespace ssjoin::pipeline {
namespace {

// The shared verify tail. `eager_bitmap` and `chunked` select the
// mode's build/guard discipline; `sort_on_end` is true only for the
// pipelined chain, whose candidates stream in discovery order.
void AppendVerifyTail(Plan* plan, ExecContext* ctx, bool eager_bitmap,
                      bool chunked, bool sort_on_end) {
  const JoinOptions& options = *ctx->options;
  if (options.verify) {
    if (options.bitmap_bits != 0) {
      plan->Add(std::make_unique<BitmapFilterOperator>(ctx, eager_bitmap));
    }
    plan->Add(std::make_unique<VerifyOperator>(ctx, chunked));
  }
  plan->Add(std::make_unique<DedupEmitOperator>(ctx, sort_on_end));
}

}  // namespace

void BuildSortedPlan(Plan* plan, ExecContext* ctx) {
  plan->Add(std::make_unique<SigGenOperator>(ctx));
  plan->Add(std::make_unique<CandidateGenOperator>(ctx));
  AppendVerifyTail(plan, ctx, /*eager_bitmap=*/false, /*chunked=*/true,
                   /*sort_on_end=*/false);
}

void BuildPipelinedPlan(Plan* plan, ExecContext* ctx) {
  plan->Add(std::make_unique<PipelinedScanOperator>(ctx));
  AppendVerifyTail(plan, ctx, /*eager_bitmap=*/true, /*chunked=*/false,
                   /*sort_on_end=*/true);
}

void BuildSpillPlan(Plan* plan, ExecContext* ctx) {
  plan->Add(std::make_unique<SpillPartitionOperator>(ctx));
  AppendVerifyTail(plan, ctx, /*eager_bitmap=*/false, /*chunked=*/true,
                   /*sort_on_end=*/false);
}

}  // namespace ssjoin::pipeline
