#include "core/pipeline/operator.h"

#include <string>
#include <utility>

#include "obs/explain.h"

namespace ssjoin::pipeline {

void Operator::Close() {
  inst_.FinishCounts(rows_in_, rows_out_);
  obs::ExplainReport* explain = ctx_->options->explain;
  if (explain == nullptr) return;
  explain->plan.push_back({name_, detail_, rows_in_, rows_out_});
  if (!tag_.empty()) {
    // Per-operator actual for the drift table: what actually flowed out
    // of this operator (deterministic — same rows at any thread count).
    std::string drift_name(obs::names::kPipelinePrefix);
    drift_name += tag_;
    drift_name += obs::names::kPipelineSuffixRowsOut;
    explain->Actual(drift_name, static_cast<double>(rows_out_));
  }
}

Status Operator::Pull(Batch* out) {
  if (!inst_.enabled()) return NextBatch(out);
  const uint64_t nested_before =
      input_ != nullptr ? input_->inst_.inclusive_ns() : 0;
  const int64_t start_ns = inst_.NowNs();
  Status status = NextBatch(out);
  const uint64_t nested =
      (input_ != nullptr ? input_->inst_.inclusive_ns() : 0) - nested_before;
  inst_.RecordPull(start_ns, nested,
                   status.ok() && out->kind != Batch::Kind::kEnd, rows_in_,
                   rows_out_);
  return status;
}

Operator* Plan::Add(std::unique_ptr<Operator> op) {
  if (!ops_.empty()) op->set_input(ops_.back().get());
  ops_.push_back(std::move(op));
  return ops_.back().get();
}

Status Plan::Run() {
  if (ops_.empty()) return Status::OK();
  // The executed plan replaces any previous join's tree (accumulated
  // explain reports show the last plan; see obs/explain.h).
  if (ctx_->options->explain != nullptr) ctx_->options->explain->plan.clear();
  if (ctx_->telem != nullptr && ctx_->telem->metrics() != nullptr) {
    for (size_t i = 0; i < ops_.size(); ++i) {
      ops_[i]->BindInstrument(ctx_->telem, static_cast<uint32_t>(i));
    }
  }
  Status status;
  for (std::unique_ptr<Operator>& op : ops_) {
    status = op->Open();
    if (!status.ok()) break;
  }
  if (status.ok()) {
    Operator* sink = ops_.back().get();
    Batch batch;
    while (true) {
      batch.Reset();
      status = sink->Pull(&batch);
      if (!status.ok() || batch.kind == Batch::Kind::kEnd) break;
    }
  }
  for (std::unique_ptr<Operator>& op : ops_) op->Close();
  return status;
}

}  // namespace ssjoin::pipeline
