#include "core/pipeline/operator.h"

#include <utility>

#include "obs/explain.h"

namespace ssjoin::pipeline {

void Operator::Close() {
  obs::ExplainReport* explain = ctx_->options->explain;
  if (explain == nullptr) return;
  explain->plan.push_back({name_, detail_, rows_in_, rows_out_});
}

Operator* Plan::Add(std::unique_ptr<Operator> op) {
  if (!ops_.empty()) op->set_input(ops_.back().get());
  ops_.push_back(std::move(op));
  return ops_.back().get();
}

Status Plan::Run() {
  if (ops_.empty()) return Status::OK();
  // The executed plan replaces any previous join's tree (accumulated
  // explain reports show the last plan; see obs/explain.h).
  if (ctx_->options->explain != nullptr) ctx_->options->explain->plan.clear();
  Status status;
  for (std::unique_ptr<Operator>& op : ops_) {
    status = op->Open();
    if (!status.ok()) break;
  }
  if (status.ok()) {
    Operator* sink = ops_.back().get();
    Batch batch;
    while (true) {
      batch.Reset();
      status = sink->NextBatch(&batch);
      if (!status.ok() || batch.kind == Batch::Kind::kEnd) break;
    }
  }
  for (std::unique_ptr<Operator>& op : ops_) op->Close();
  return status;
}

}  // namespace ssjoin::pipeline
