// Plan builders: the three execution modes expressed as operator chains
// (DESIGN.md Section 13). The drivers in core/ssjoin.cc and the spill
// entry points build one of these and call Plan::Run; everything the
// modes share — guard protocol, telemetry discipline, explain plan
// recording — lives in the operators, once.
//
//   Sorted     SigGen -> CandidateGen [-> BitmapFilter -> Verify]
//              -> DedupEmit
//   Pipelined  PipelinedScan [-> BitmapFilter -> Verify] -> DedupEmit
//   Spilled    SpillPartition [-> BitmapFilter -> Verify] -> DedupEmit
//
// The bracketed tail exists only when options.verify; BitmapFilter only
// when options.bitmap_bits != 0. The sorted and spilled chains emit
// globally sorted candidates, so their DedupEmit appends; the pipelined
// chain emits in discovery order and sorts at end of stream.

#pragma once

#include "core/pipeline/operator.h"

namespace ssjoin::pipeline {

void BuildSortedPlan(Plan* plan, ExecContext* ctx);
void BuildPipelinedPlan(Plan* plan, ExecContext* ctx);
void BuildSpillPlan(Plan* plan, ExecContext* ctx);

}  // namespace ssjoin::pipeline
