// SigGenOperator: the sorted drivers' signature-generation phase as a
// source operator (DESIGN.md Section 13). Emits exactly one
// kSignatures batch — the whole left (and, for the binary mode, right)
// side as CSR SignatureChunks — then an end batch.
//
// Phase contract, identical to the legacy drivers: the kSigGen
// checkpoint runs before the SigGen span opens (a trip here leaves no
// phase span); generation fans out per set into thread-local CSR parts
// stitched in set order, so the chunk is byte-identical for every
// thread count; signatures_r/s and the "signatures" phase attribute are
// committed only when generation completed untripped.

#pragma once

#include "core/pipeline/operator.h"

namespace ssjoin::pipeline {

class SigGenOperator : public Operator {
 public:
  explicit SigGenOperator(ExecContext* ctx)
      : Operator(ctx, "SigGen", "csr", obs::names::kOpSigGen) {}

  Status NextBatch(Batch* out) override;
  void Close() override;

 private:
  bool done_ = false;
  SignatureChunk left_;
  SignatureChunk right_;
};

}  // namespace ssjoin::pipeline
