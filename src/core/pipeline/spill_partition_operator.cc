#include "core/pipeline/spill_partition_operator.h"

#include <algorithm>
#include <utility>

#include "core/execution_guard.h"
#include "core/spill/spill_internal.h"
#include "core/spill/spill_join.h"
#include "obs/join_telemetry.h"
#include "obs/log.h"

namespace ssjoin::pipeline {

Status SpillPartitionOperator::Produce() {
  ExecutionGuard* guard = ctx_->guard;
  JoinStats& stats = ctx_->result->stats;
  const JoinOptions& options = *ctx_->options;
  rows_in_ = ctx_->left->size() +
             (ctx_->right != nullptr ? ctx_->right->size() : 0);
  if (guard != nullptr) {
    SSJOIN_RETURN_NOT_OK(guard->Checkpoint(JoinPhase::kSigGen));
  }
  uint32_t partitions = options.spill.partitions != 0
                            ? options.spill.partitions
                            : spill::kDefaultPartitions;
  uint64_t retries = 0;
  while (true) {
    JoinStats attempt;
    std::vector<uint64_t> attempt_candidates;
    Status st = spill::internal::RunAttempt(
        *ctx_->left, ctx_->right, *ctx_->scheme, options, partitions,
        *ctx_->pool, guard, *ctx_->telem, &attempt, &attempt_candidates);
    // Phase seconds and I/O bytes accumulate across attempts — failed
    // work was still time and disk traffic the operator pays for.
    stats.siggen_seconds += attempt.siggen_seconds;
    stats.candpair_seconds += attempt.candpair_seconds;
    stats.spill_bytes_written += attempt.spill_bytes_written;
    stats.spill_bytes_read += attempt.spill_bytes_read;
    stats.spill_partitions = partitions;
    stats.spill_retries = retries;
    if (st.ok()) {
      stats.signatures_r = attempt.signatures_r;
      stats.signatures_s = attempt.signatures_s;
      stats.signature_collisions = attempt.signature_collisions;
      stats.candidates = attempt.candidates;
      candidates_ = std::move(attempt_candidates);
      break;
    }
    // Guard trips are final (the budget does not heal by retrying) and
    // only I/O failures are transient; everything else surrenders too.
    const bool retryable = st.code() == StatusCode::kIOError &&
                           (guard == nullptr || !guard->tripped()) &&
                           retries < options.spill.max_retries;
    if (!retryable) {
      // A trip or exhausted retry keeps the completed-signature counts
      // (deterministic: the write stage either finished or reports 0)
      // but no candidate accounting — those counters stopped mid-flight.
      stats.signatures_r = attempt.signatures_r;
      stats.signatures_s = attempt.signatures_s;
      return st;
    }
    ++retries;
    obs::LogEvent(options.log, obs::LogLevel::kWarn, "spill_retry",
                  {{"attempt", retries},
                   {"partitions", static_cast<uint64_t>(partitions)},
                   {"error", st.ToString()}});
    // Fewer, larger partitions: the common spill failure modes are
    // per-file (descriptor limits, quota on file count), so halving is
    // the retry that changes the attempt instead of repeating it.
    partitions = std::max(1u, partitions / 2);
  }
  ctx_->telem->PhaseAttr("candidates", stats.candidates);
  if (guard != nullptr) {
    guard->ChargeMemory(candidates_.size() * sizeof(uint64_t));
  }
  rows_out_ = stats.candidates;
  return Status::OK();
}

Status SpillPartitionOperator::NextBatch(Batch* out) {
  if (!produced_) {
    produced_ = true;
    SSJOIN_RETURN_NOT_OK(Produce());
    if (!ctx_->options->verify) return Status::OK();
  }
  EmitCandidateSlice(candidates_, &pos_, out);
  return Status::OK();
}

void SpillPartitionOperator::Close() { Operator::Close(); }

}  // namespace ssjoin::pipeline
