// SpillPartitionOperator: source for the out-of-core execution path
// (DESIGN.md Sections 12 and 13). Wraps the spill layer's retry loop —
// each attempt writes both sides into partition files and merges
// per-partition candidate generation (spill::internal::RunAttempt),
// halving the partition count after a transient I/O failure — and then
// streams the merged, globally sorted candidate vector out in verify
// super-chunks. Guard trips are final; exhausted retries surrender with
// the completed-signature counts but no candidate accounting, exactly
// like the legacy spilled driver.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/pipeline/operator.h"

namespace ssjoin::pipeline {

class SpillPartitionOperator : public Operator {
 public:
  explicit SpillPartitionOperator(ExecContext* ctx)
      : Operator(ctx, "SpillPartition", "partitioned",
                 obs::names::kOpSpillPartition) {}

  Status NextBatch(Batch* out) override;
  void Close() override;

 private:
  Status Produce();

  bool produced_ = false;
  std::vector<uint64_t> candidates_;
  size_t pos_ = 0;
};

}  // namespace ssjoin::pipeline
