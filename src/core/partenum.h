// PartEnum: the paper's signature scheme for hamming SSJoins (Section 4).
//
// PartEnum combines two ideas (Section 4.1):
//   Partitioning — split the dimensions into n1 first-level partitions; two
//   vectors with Hd <= k must have Hd <= k2 = ceil((k+1)/n1) - 1 on at
//   least one first-level partition (counting argument).
//   Enumeration — within each first-level partition, split into n2
//   second-level partitions and emit one signature per subset of
//   (n2 - k2) second-level partitions; two projections with Hd <= k2
//   disagree on at most k2 second-level partitions, so some emitted subset
//   avoids all disagreements and its projections coincide.
//
// Each signature is the pair ⟨v[P], P⟩ (projection, dimension subset),
// hashed to 64 bits via the sparse encoding ⟨P1(v), i, S⟩ of Section 4.2.
// A set therefore gets exactly n1 * C(n2, k2) signatures, independent of
// the dimensionality n — the property that makes PartEnum work for sparse
// sets over huge domains (Theorem 2 discussion).
//
// Dimension assignment: the paper permutes {1..n} with a random
// permutation pi and uses contiguous equi-sized blocks. Our element domain
// is the full 32-bit hash space, so materializing pi is impossible;
// instead each element is assigned directly to one of the n1*n2
// second-level partitions by a seeded mixing hash. This has the same
// distribution as "random permutation + contiguous blocks" (each element
// lands in a uniformly random partition, independently across elements up
// to hash quality), and Theorem 1 (completeness) holds for *any*
// deterministic assignment map, because its counting argument never uses
// bijectivity — only that each differing dimension lands in exactly one
// partition. Tests verify completeness exhaustively.

#pragma once

#include <cstdint>
#include <vector>

#include "core/signature_scheme.h"
#include "util/hashing.h"
#include "util/status.h"

namespace ssjoin {

/// Parameters of a hamming PartEnum instance (paper Figure 3).
struct PartEnumParams {
  /// Hamming distance threshold k.
  uint32_t k = 0;
  /// Number of first-level partitions; must satisfy 1 <= n1 <= k + 1.
  uint32_t n1 = 1;
  /// Number of second-level partitions per first-level partition; must
  /// satisfy n1 * n2 > k + 1 (ensures n2 - k2 >= 1) and n2 >= 1.
  uint32_t n2 = 2;
  /// Seed of the dimension-assignment hash (the paper's permutation pi).
  /// All instances participating in one join must share it.
  uint64_t seed = 0x9E3779B9;

  /// The derived second-level threshold k2 = ceil((k+1)/n1) - 1.
  uint32_t k2() const { return (k + n1) / n1 - 1; }

  /// Number of signatures per set: n1 * C(n2, n2 - k2).
  uint64_t SignaturesPerSet() const;

  /// Validates the Figure 3 constraints.
  Status Validate() const;

  /// A reasonable default for a given k: n1 = ceil((k+1)/2) (so k2 = 1)
  /// and n2 = 4, the "hybrid" configuration of Section 4.1. Callers that
  /// care about performance should use the parameter advisor instead.
  static PartEnumParams Default(uint32_t k);

  /// All valid (n1, n2) settings for threshold k with at most
  /// `max_signatures` signatures per set — the search space swept by the
  /// parameter advisor and by the Figure 15 / Table 1 experiments.
  static std::vector<PartEnumParams> EnumerateValid(uint32_t k,
                                                    uint64_t max_signatures,
                                                    uint64_t seed);
};

/// \brief PartEnum signature scheme for hamming SSJoins.
class PartEnumScheme final : public SignatureScheme {
 public:
  /// Validates `params` and builds the scheme (precomputes the subset
  /// enumeration masks).
  static Result<PartEnumScheme> Create(const PartEnumParams& params);

  std::string Name() const override;

  void Generate(std::span<const ElementId> set,
                std::vector<Signature>* out) const override;

  const PartEnumParams& params() const { return params_; }

  /// The second-level partition (0 .. n1*n2-1) element `e` is assigned to.
  uint32_t PartitionOf(ElementId e) const;

 private:
  explicit PartEnumScheme(const PartEnumParams& params);

  PartEnumParams params_;
  uint32_t k2_;
  // Bitmasks over {0..n2-1}, one per (n2 - k2)-subset, enumerated once.
  std::vector<uint32_t> subset_masks_;
  // Precomputed hash material (core/kernels/hash_kernels.h split): the
  // per-signature header Adds — seed, first-level index i, subset mask,
  // partition tags — never vary per set, so their Mix64s are computed
  // once here and folded with AddMixed in Generate. Value-exact with the
  // original Add chain.
  std::vector<SequenceHasher> level_hashers_;   // state after Add(i)
  std::vector<uint64_t> mixed_subset_masks_;    // Mix64(mask)
  std::vector<uint64_t> mixed_partition_tags_;  // Mix64(kPartitionTag ^ j)
};

}  // namespace ssjoin
