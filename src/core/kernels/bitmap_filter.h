// Bitmap pre-filter (arXiv 1711.07295 style; DESIGN.md Section 11).
//
// Each input set gets a fixed-width (64/128/256-bit) bit signature built
// at verification load time by XOR-toggling bit Mix64(e) % width for
// every element e. XOR (rather than OR) is what makes the filter exact:
//
//   sig(r) ^ sig(s) == xor-signature of the symmetric difference r Δ s,
//
// because shared elements toggle the same bit in both signatures and
// cancel. Each element of r Δ s flips at most one bit, and flips can
// only cancel pairwise, so
//
//   popcount(sig(r) ^ sig(s)) <= |r Δ s| = Hd(r, s).
//
// With Hd bounded below, the overlap is bounded above:
//
//   |r ∩ s| = (|r| + |s| - Hd) / 2
//           <= floor((|r| + |s| - popcount(sig_r ^ sig_s)) / 2),
//
// also capped by min(|r|, |s|). A candidate whose overlap *upper bound*
// already fails Predicate::Matches cannot satisfy the predicate — every
// predicate in the paper's class (Section 2: AND of |r∩s| >= e_i) is
// monotone in the overlap — so it is pruned without touching the
// element arrays. The filter never rejects a true match (enforced by
// tests/core/kernels_test.cc); predicates that carry no size-based
// information (the weighted family reports MinOverlap == 0) simply never
// prune, which is safe and costs two cache lines per candidate.
//
// Width choice: 128 bits (two words) is the default — one popcount pair
// per candidate and a measured prune rate of most false positives on the
// paper's workloads; 64 halves the memory for small sets, 256 prunes
// harder when sets are large relative to the width (see DESIGN.md
// Section 11 for the policy discussion and BENCH_kernels.json for
// measurements).

#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "core/predicate.h"
#include "data/collection.h"

namespace ssjoin::kernels {

/// Valid widths for JoinOptions::bitmap_bits (0 disables the filter).
inline constexpr uint32_t kBitmapWidths[] = {64, 128, 256};

inline constexpr bool IsValidBitmapBits(uint32_t bits) {
  return bits == 0 || bits == 64 || bits == 128 || bits == 256;
}

/// Per-set XOR bit signatures for one collection, stored as a flat
/// row-major word array (bits/64 words per set).
class BitmapTable {
 public:
  BitmapTable() = default;

  /// Builds signatures for every set of `input`. `bits` must be one of
  /// kBitmapWidths. The build is per-set independent and deterministic;
  /// callers may shard it (BuildRange) across threads.
  static BitmapTable Build(const SetCollection& input, uint32_t bits);

  /// Builds rows [begin, end) into an existing table created with
  /// Prepare() — the parallel build path.
  void BuildRange(const SetCollection& input, size_t begin, size_t end);

  /// Allocates (zeroed) rows for `num_sets` sets without filling them.
  static BitmapTable Prepare(size_t num_sets, uint32_t bits);

  bool empty() const { return words_.empty(); }
  uint32_t bits() const { return bits_; }
  size_t words_per_set() const { return words_per_set_; }
  size_t size_bytes() const { return words_.size() * sizeof(uint64_t); }

  const uint64_t* row(SetId id) const {
    return words_.data() + static_cast<size_t>(id) * words_per_set_;
  }

  /// popcount(sig(a) ^ sig(b)) — the Hamming-distance lower bound.
  static uint32_t XorPopcount(const uint64_t* a, const uint64_t* b,
                              size_t words) {
    uint32_t total = 0;
    for (size_t w = 0; w < words; ++w) {
      total += static_cast<uint32_t>(std::popcount(a[w] ^ b[w]));
    }
    return total;
  }

  /// The overlap upper bound for a candidate pair:
  /// min(min(|r|,|s|), floor((|r|+|s| - popcount(xor)) / 2)). The rows
  /// may come from two different tables (binary join) as long as both
  /// were built with the same width.
  static uint32_t OverlapUpperBound(const uint64_t* row_r,
                                    const uint64_t* row_s, size_t words,
                                    uint32_t size_r, uint32_t size_s) {
    uint32_t hd_lower = XorPopcount(row_r, row_s, words);
    uint32_t sum = size_r + size_s;
    uint32_t from_hd = hd_lower >= sum ? 0 : (sum - hd_lower) / 2;
    uint32_t cap = size_r < size_s ? size_r : size_s;
    return from_hd < cap ? from_hd : cap;
  }

  /// True when the pair can still satisfy the predicate: the bound above
  /// is fed through the predicate's own Matches so boundary epsilons are
  /// honored. False means "provably no match" — safe to skip Evaluate.
  static bool MayMatch(const Predicate& predicate, const uint64_t* row_r,
                       const uint64_t* row_s, size_t words, uint32_t size_r,
                       uint32_t size_s) {
    return predicate.Matches(
        size_r, size_s,
        OverlapUpperBound(row_r, row_s, words, size_r, size_s));
  }

  /// Self-join convenience: both rows from this table.
  bool MayMatch(const Predicate& predicate, SetId id_r, SetId id_s,
                uint32_t size_r, uint32_t size_s) const {
    return MayMatch(predicate, row(id_r), row(id_s), words_per_set_,
                    size_r, size_s);
  }

 private:
  uint32_t bits_ = 0;
  size_t words_per_set_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace ssjoin::kernels
