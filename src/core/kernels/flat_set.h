// Flat open-addressing u64 set for candidate dedup (DESIGN.md §11).
//
// Candidate generation produces packed (r, s) pairs with duplicates
// (one per shared signature). The drivers used to dedup by sort+unique
// over the full occurrence list — O(n log n) comparisons on a vector
// that is mostly duplicates for selective schemes. FlatU64Set replaces
// that with a linear-probing power-of-two table in the sigmod18contest
// MultiArrayTable / flat-hash-table shape: one Mix64 probe per
// occurrence, no per-node allocation, contiguous memory.
//
// Determinism: the table's iteration order is insertion/probe dependent,
// so it is never exposed — ExtractSorted() moves the distinct keys out
// and sorts them, producing exactly the vector sort+unique produced.
// (The `deterministic-iteration` AST lint rule polices unordered
// containers reaching export sinks; this class only ever escapes through
// the sorted extraction.)
//
// Sizing: callers reserve from their duplicate estimate — the drivers
// pre-scan their posting groups for the exact insertion count (see
// CandidateDedup in core/ssjoin.cc, which also falls back to
// sort+unique for shards whose table would outgrow cache) — and the
// table grows by doubling past a 0.7 load factor regardless, so a bad
// estimate costs rehashes, not correctness.
//
// Not thread-safe; each shard owns one instance.

#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/hashing.h"

namespace ssjoin::kernels {

class FlatU64Set {
 public:
  /// Sentinel for an empty slot. PackPair(a, b) with a < b (self-join)
  /// or any (r, s) candidate never produces all-ones (that would need
  /// set id 0xffffffff on both sides), so the sentinel is safe for the
  /// dedup workload; Insert checks it in debug builds via the capacity
  /// invariants only.
  static constexpr uint64_t kEmpty = ~0ULL;

  FlatU64Set() = default;

  /// Reserves capacity for about `expected` distinct keys.
  explicit FlatU64Set(size_t expected) { Reserve(expected); }

  void Reserve(size_t expected) {
    size_t needed = std::bit_ceil(
        std::max<size_t>(16, expected + expected / 2 + 1));
    if (needed > slots_.size()) Rehash(needed);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  /// Inserts `key`; returns true when it was not present. `key` must not
  /// be the kEmpty sentinel.
  bool Insert(uint64_t key) {
    if (slots_.empty() || (size_ + 1) * 10 > slots_.size() * 7) {
      Rehash(std::max<size_t>(16, slots_.size() * 2));
    }
    size_t mask = slots_.size() - 1;
    size_t slot = static_cast<size_t>(Mix64(key)) & mask;
    while (slots_[slot] != kEmpty) {
      if (slots_[slot] == key) return false;
      slot = (slot + 1) & mask;
    }
    slots_[slot] = key;
    ++size_;
    return true;
  }

  bool Contains(uint64_t key) const {
    if (slots_.empty()) return false;
    size_t mask = slots_.size() - 1;
    size_t slot = static_cast<size_t>(Mix64(key)) & mask;
    while (slots_[slot] != kEmpty) {
      if (slots_[slot] == key) return true;
      slot = (slot + 1) & mask;
    }
    return false;
  }

  /// Moves the distinct keys out as a sorted vector and clears the set.
  /// Byte-identical to sort+unique over the inserted sequence.
  std::vector<uint64_t> ExtractSorted() {
    std::vector<uint64_t> out;
    out.reserve(size_);
    for (uint64_t slot : slots_) {
      if (slot != kEmpty) out.push_back(slot);
    }
    std::sort(out.begin(), out.end());
    slots_.clear();
    size_ = 0;
    return out;
  }

 private:
  void Rehash(size_t new_capacity) {
    std::vector<uint64_t> old = std::move(slots_);
    slots_.assign(new_capacity, kEmpty);
    size_t mask = new_capacity - 1;
    for (uint64_t key : old) {
      if (key == kEmpty) continue;
      size_t slot = static_cast<size_t>(Mix64(key)) & mask;
      while (slots_[slot] != kEmpty) slot = (slot + 1) & mask;
      slots_[slot] = key;
    }
  }

  std::vector<uint64_t> slots_;
  size_t size_ = 0;
};

}  // namespace ssjoin::kernels
