#include "core/kernels/intersect.h"

#include <algorithm>
#include <atomic>

#if defined(SSJOIN_SIMD_ENABLED) && \
    (defined(__x86_64__) || defined(__i386__))
#define SSJOIN_SIMD_X86 1
#include <immintrin.h>
#endif

namespace ssjoin::kernels {

namespace {

std::atomic<uint64_t> g_scalar_calls{0};
std::atomic<uint64_t> g_galloping_calls{0};
std::atomic<uint64_t> g_simd_calls{0};

// The two-pointer reference (mirrors util SortedIntersectionSize; kept
// local so the kernel layer has no dependency and the oracle cannot
// drift out from under the differential tests).
uint32_t IntersectScalar(std::span<const uint32_t> a,
                         std::span<const uint32_t> b) {
  size_t i = 0, j = 0;
  uint32_t size = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++size;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return size;
}

// Galloping search for skewed pairs: every element of the small side is
// located in the large side by a doubling probe + binary search that
// resumes where the previous element left off (both sides are sorted, so
// the search window only moves forward).
uint32_t IntersectGalloping(std::span<const uint32_t> small,
                            std::span<const uint32_t> large) {
  uint32_t size = 0;
  size_t lo = 0;
  for (uint32_t value : small) {
    // Doubling probe from the current frontier.
    size_t step = 1;
    size_t hi = lo;
    while (hi < large.size() && large[hi] < value) {
      lo = hi;
      hi += step;
      step <<= 1;
    }
    hi = std::min(hi, large.size());
    const uint32_t* pos =
        std::lower_bound(large.data() + lo, large.data() + hi, value);
    lo = static_cast<size_t>(pos - large.data());
    if (lo == large.size()) break;
    if (large[lo] == value) {
      ++size;
      ++lo;
    }
  }
  return size;
}

// Portable SWAR fallback: a 4-wide unrolled branch-light merge. The
// inner comparisons compile to setcc/cmov chains instead of a
// mispredict-prone if/else ladder; the tail falls back to the scalar
// loop. Bit-exact with IntersectScalar by construction (it advances the
// same pointers by the same totals, just four decisions per iteration).
uint32_t IntersectSwar(std::span<const uint32_t> a,
                       std::span<const uint32_t> b) {
  size_t i = 0, j = 0;
  uint32_t size = 0;
  if (a.size() >= 4 && b.size() >= 4) {
    const size_t ia_end = a.size() - 4;
    const size_t ib_end = b.size() - 4;
    while (i <= ia_end && j <= ib_end) {
      for (int u = 0; u < 4; ++u) {
        uint32_t va = a[i];
        uint32_t vb = b[j];
        size += (va == vb);
        i += (va <= vb);
        j += (vb <= va);
      }
      if (i > ia_end || j > ib_end) break;
    }
  }
  return size + IntersectScalar(a.subspan(i), b.subspan(j));
}

#if defined(SSJOIN_SIMD_X86)

// SSE all-pairs block compare: advance both sides in 4-element blocks
// and test a's block against every rotation of b's block, so all 16
// element pairs are compared with 4 vector compares (the cmpestrm-style
// kernel shape). Requires sorted duplicate-free inputs — each match is
// counted exactly once because an element occurs at most once per side.
__attribute__((target("sse4.2"))) uint32_t IntersectSse(
    std::span<const uint32_t> a, std::span<const uint32_t> b) {
  size_t i = 0, j = 0;
  uint32_t size = 0;
  if (a.size() >= 4 && b.size() >= 4) {
    const size_t ia_end = a.size() - 4;
    const size_t ib_end = b.size() - 4;
    while (i <= ia_end && j <= ib_end) {
      __m128i va =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.data() + i));
      __m128i vb =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.data() + j));
      __m128i cmp = _mm_cmpeq_epi32(va, vb);
      __m128i rot1 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1));
      cmp = _mm_or_si128(cmp, _mm_cmpeq_epi32(va, rot1));
      __m128i rot2 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2));
      cmp = _mm_or_si128(cmp, _mm_cmpeq_epi32(va, rot2));
      __m128i rot3 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3));
      cmp = _mm_or_si128(cmp, _mm_cmpeq_epi32(va, rot3));
      int mask = _mm_movemask_ps(_mm_castsi128_ps(cmp));
      size += static_cast<uint32_t>(__builtin_popcount(mask));
      // Advance the side whose block ends first; ties advance both (all
      // cross-pairs <= the shared maximum have been compared).
      uint32_t a_max = a[i + 3];
      uint32_t b_max = b[j + 3];
      i += (a_max <= b_max) ? 4 : 0;
      j += (b_max <= a_max) ? 4 : 0;
    }
  }
  return size + IntersectScalar(a.subspan(i), b.subspan(j));
}

// AVX2 variant: 8-element blocks, 8 rotations. The rotation is a lane
// crossing permute (vpermd); 8 compares cover all 64 element pairs.
__attribute__((target("avx2"))) uint32_t IntersectAvx2(
    std::span<const uint32_t> a, std::span<const uint32_t> b) {
  size_t i = 0, j = 0;
  uint32_t size = 0;
  if (a.size() >= 8 && b.size() >= 8) {
    const size_t ia_end = a.size() - 8;
    const size_t ib_end = b.size() - 8;
    const __m256i rotate_one =
        _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    while (i <= ia_end && j <= ib_end) {
      __m256i va = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(a.data() + i));
      __m256i vb = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b.data() + j));
      __m256i cmp = _mm256_cmpeq_epi32(va, vb);
      __m256i rotated = vb;
      for (int r = 1; r < 8; ++r) {
        rotated = _mm256_permutevar8x32_epi32(rotated, rotate_one);
        cmp = _mm256_or_si256(cmp, _mm256_cmpeq_epi32(va, rotated));
      }
      int mask = _mm256_movemask_ps(_mm256_castsi256_ps(cmp));
      size += static_cast<uint32_t>(__builtin_popcount(mask));
      uint32_t a_max = a[i + 7];
      uint32_t b_max = b[j + 7];
      i += (a_max <= b_max) ? 8 : 0;
      j += (b_max <= a_max) ? 8 : 0;
    }
  }
  return size + IntersectScalar(a.subspan(i), b.subspan(j));
}

#endif  // SSJOIN_SIMD_X86

using IntersectFn = uint32_t (*)(std::span<const uint32_t>,
                                 std::span<const uint32_t>);

// Probes the CPU once and caches the best vector implementation (the
// SWAR merge when the build or host has no vector unit).
IntersectFn ResolveBlockKernel() {
#if defined(SSJOIN_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return &IntersectAvx2;
  if (__builtin_cpu_supports("sse4.2")) return &IntersectSse;
#endif
  return &IntersectSwar;
}

IntersectFn BlockKernel() {
  static const IntersectFn fn = ResolveBlockKernel();
  return fn;
}

}  // namespace

bool SimdAvailable() {
#if defined(SSJOIN_SIMD_X86)
  return BlockKernel() != static_cast<IntersectFn>(&IntersectSwar);
#else
  return false;
#endif
}

const char* IntersectKernelName(IntersectKernel kernel) {
  switch (kernel) {
    case IntersectKernel::kScalar:
      return "scalar";
    case IntersectKernel::kGalloping:
      return "galloping";
    case IntersectKernel::kSimd:
      return "simd";
  }
  return "unknown";
}

uint32_t IntersectSize(std::span<const uint32_t> a,
                       std::span<const uint32_t> b) {
  const size_t small = std::min(a.size(), b.size());
  const size_t large = std::max(a.size(), b.size());
  if (small <= 8 || large < 2 * kGallopRatio) {
    // Tiny operands: dispatch overhead would exceed the work.
    g_scalar_calls.fetch_add(1, std::memory_order_relaxed);
    return IntersectScalar(a, b);
  }
  if (large >= kGallopRatio * small) {
    g_galloping_calls.fetch_add(1, std::memory_order_relaxed);
    return a.size() <= b.size() ? IntersectGalloping(a, b)
                                : IntersectGalloping(b, a);
  }
  g_simd_calls.fetch_add(1, std::memory_order_relaxed);
  return BlockKernel()(a, b);
}

uint32_t IntersectSizeWith(IntersectKernel kernel,
                           std::span<const uint32_t> a,
                           std::span<const uint32_t> b) {
  switch (kernel) {
    case IntersectKernel::kScalar:
      return IntersectScalar(a, b);
    case IntersectKernel::kGalloping:
      return a.size() <= b.size() ? IntersectGalloping(a, b)
                                  : IntersectGalloping(b, a);
    case IntersectKernel::kSimd:
      return BlockKernel()(a, b);
  }
  return IntersectScalar(a, b);
}

IntersectCounts IntersectDispatchCounts() {
  IntersectCounts counts;
  counts.scalar = g_scalar_calls.load(std::memory_order_relaxed);
  counts.galloping = g_galloping_calls.load(std::memory_order_relaxed);
  counts.simd = g_simd_calls.load(std::memory_order_relaxed);
  return counts;
}

}  // namespace ssjoin::kernels
