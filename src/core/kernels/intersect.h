// Raw-speed set-intersection kernels (DESIGN.md Section 11).
//
// Exact verification spends its time in sorted-set intersection
// (Predicate::Evaluate -> SortedIntersectionSize). This module replaces
// that single scalar loop with a small family of bit-exact kernels and a
// per-pair dispatch policy:
//
//   * kScalar    — the two-pointer reference (util/bit_vector.cc), kept
//                  as the semantics oracle every other kernel must match.
//   * kGalloping — for skewed size ratios (|b| >= kGallopRatio * |a|):
//                  binary-search each element of the small side in the
//                  large side, O(|a| log |b|) instead of O(|a| + |b|).
//   * kSimd      — for comparable sizes on x86-64 with SSE/AVX2: compare
//                  4/8-element blocks against all rotations of the other
//                  side's block in vector registers (the
//                  _mm_cmpestrm-style all-pairs block compare), falling
//                  back to a 4-wide unrolled SWAR merge on other ISAs.
//
// All kernels return exactly the same count for every input — the
// differential suite (tests/core/kernels_test.cc, ctest label `kernels`)
// enforces it exhaustively on small sets and randomly at scale — so the
// dispatch choice can never change join output, only its speed.
//
// Compile-time gate: the SIMD paths exist only when SSJOIN_SIMD_ENABLED
// is defined (CMake option SSJOIN_SIMD, default ON) and the target is
// x86; the portable build uses the SWAR fallback everywhere. Runtime
// gate: the first call probes the CPU (__builtin_cpu_supports) once and
// caches the best available implementation.
//
// Thread-safety: the kernels are pure functions over their operands.
// The dispatch counters are process-global relaxed atomics — cheap,
// monotone, and approximate under concurrent joins — published as
// kRuntime metrics only (they depend on the host CPU, so they can never
// be part of the deterministic export).

#pragma once

#include <cstdint>
#include <span>

namespace ssjoin::kernels {

/// Which implementation serviced an IntersectSize call.
enum class IntersectKernel {
  kScalar = 0,
  kGalloping = 1,
  kSimd = 2,
};

/// Size-ratio threshold for galloping: the large side must be at least
/// this many times the small side. Below it, the linear merge's
/// branch-predictable scan wins; above it, binary search does.
inline constexpr size_t kGallopRatio = 32;

/// |a ∩ b| for two sorted, duplicate-free element arrays. Dispatches to
/// the best kernel for this pair (size ratio, then ISA) and increments
/// the matching dispatch counter. Bit-exact with SortedIntersectionSize
/// for every input.
uint32_t IntersectSize(std::span<const uint32_t> a,
                       std::span<const uint32_t> b);

/// Runs one specific kernel (differential tests and benchmarks; skips
/// the dispatch counters). kSimd silently degrades to the SWAR fallback
/// when the build or CPU lacks vector support — the result is identical
/// either way.
uint32_t IntersectSizeWith(IntersectKernel kernel,
                           std::span<const uint32_t> a,
                           std::span<const uint32_t> b);

/// True when IntersectSize can reach a vectorized (SSE/AVX2) path on
/// this build + CPU; false on SSJOIN_SIMD=OFF builds and non-x86 hosts.
bool SimdAvailable();

/// Human name of the kernel ("scalar" / "galloping" / "simd").
const char* IntersectKernelName(IntersectKernel kernel);

/// Monotone process-global dispatch totals (relaxed atomics).
struct IntersectCounts {
  uint64_t scalar = 0;
  uint64_t galloping = 0;
  uint64_t simd = 0;
};

/// Snapshot of the dispatch counters. Drivers snapshot at join start and
/// publish the delta at join end as kRuntime metrics.
IntersectCounts IntersectDispatchCounts();

}  // namespace ssjoin::kernels
