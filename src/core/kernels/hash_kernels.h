// Batched signature-hashing kernels (DESIGN.md Section 11).
//
// Signature generation is the dominant single-thread cost (~84% of wall
// time on the fig12 workload — BENCH_parallel_scaling.json), and almost
// all of it is the per-element Mix64 / HashCombine chain: PartEnum
// re-mixes every element once per enumerated subset, WtEnum once per DFS
// inclusion, and the tagged wrappers (partenum_jaccard, general_join)
// re-combine every emitted signature with its instance tag.
//
// Two observations make this fast without changing a single hash value:
//
//   1. HashCombine(state, v) = state ^ (Mix64(v) + C + shifts(state)).
//      Only Mix64(v) is expensive (3 multiplies, 4 xor-shifts) and it
//      does not depend on the accumulator — so the mix of each element
//      can be computed once, 4-wide and data-parallel, and the cheap
//      sequential fold reuses it arbitrarily often. MixBatch +
//      SequenceHasher::AddMixed implement exactly that split; the
//      results are bit-identical to the scalar Add chain (differential
//      suite, ctest label `kernels`).
//
//   2. The tag-combine loops transform each signature independently:
//      out[p] = HashCombine(tag_seed, out[p]). HashCombineBatch unrolls
//      the transform 4-wide so the four Mix64 pipelines overlap in the
//      out-of-order core (the multiplies of independent elements have no
//      dependency chain between them).
//
// Everything here is value-exact with util/hashing.h by construction —
// these kernels re-order work, never redefine it — so signatures,
// candidates, and join output are byte-identical whether or not a call
// site has been converted.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/hashing.h"

namespace ssjoin::kernels {

/// mixed[i] = Mix64(values[i]), 4-wide unrolled. `mixed` must have
/// values.size() capacity.
inline void MixBatch(std::span<const uint32_t> values, uint64_t* mixed) {
  size_t i = 0;
  const size_t n = values.size();
  for (; i + 4 <= n; i += 4) {
    // Four independent Mix64 pipelines; no cross-iteration dependency.
    uint64_t m0 = Mix64(values[i]);
    uint64_t m1 = Mix64(values[i + 1]);
    uint64_t m2 = Mix64(values[i + 2]);
    uint64_t m3 = Mix64(values[i + 3]);
    mixed[i] = m0;
    mixed[i + 1] = m1;
    mixed[i + 2] = m2;
    mixed[i + 3] = m3;
  }
  for (; i < n; ++i) mixed[i] = Mix64(values[i]);
}

/// Appends Mix64 of every value to `mixed`.
inline void MixBatch(std::span<const uint32_t> values,
                     std::vector<uint64_t>* mixed) {
  size_t base = mixed->size();
  mixed->resize(base + values.size());
  MixBatch(values, mixed->data() + base);
}

/// out[i] = HashCombine(seed, out[i]) for every element, 4-wide
/// unrolled — the tagged-signature transform of partenum_jaccard /
/// general_join, value-exact with the scalar loop.
inline void HashCombineBatch(uint64_t seed, std::span<uint64_t> out) {
  size_t i = 0;
  const size_t n = out.size();
  const uint64_t shifted =
      0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  for (; i + 4 <= n; i += 4) {
    uint64_t m0 = Mix64(out[i]);
    uint64_t m1 = Mix64(out[i + 1]);
    uint64_t m2 = Mix64(out[i + 2]);
    uint64_t m3 = Mix64(out[i + 3]);
    out[i] = seed ^ (m0 + shifted);
    out[i + 1] = seed ^ (m1 + shifted);
    out[i + 2] = seed ^ (m2 + shifted);
    out[i + 3] = seed ^ (m3 + shifted);
  }
  for (; i < n; ++i) out[i] = HashCombine(seed, out[i]);
}

/// out[i] = NarrowHash(Mix64(out[i]), bits) for every element — the
/// NarrowedScheme re-mix/narrow transform, 4-wide unrolled.
inline void MixNarrowBatch(std::span<uint64_t> out, int bits) {
  size_t i = 0;
  const size_t n = out.size();
  for (; i + 4 <= n; i += 4) {
    uint64_t m0 = Mix64(out[i]);
    uint64_t m1 = Mix64(out[i + 1]);
    uint64_t m2 = Mix64(out[i + 2]);
    uint64_t m3 = Mix64(out[i + 3]);
    out[i] = NarrowHash(m0, bits);
    out[i + 1] = NarrowHash(m1, bits);
    out[i + 2] = NarrowHash(m2, bits);
    out[i + 3] = NarrowHash(m3, bits);
  }
  for (; i < n; ++i) out[i] = NarrowHash(Mix64(out[i]), bits);
}

}  // namespace ssjoin::kernels
