#include "core/kernels/bitmap_filter.h"

#include "util/check.h"
#include "util/hashing.h"

namespace ssjoin::kernels {

BitmapTable BitmapTable::Prepare(size_t num_sets, uint32_t bits) {
  SSJOIN_CHECK(IsValidBitmapBits(bits) && bits != 0,
               "bitmap width {} not one of 64/128/256", bits);
  BitmapTable table;
  table.bits_ = bits;
  table.words_per_set_ = bits / 64;
  table.words_.assign(num_sets * table.words_per_set_, 0);
  return table;
}

void BitmapTable::BuildRange(const SetCollection& input, size_t begin,
                             size_t end) {
  const uint64_t mask = bits_ - 1;  // widths are powers of two
  for (size_t id = begin; id < end; ++id) {
    uint64_t* row = words_.data() + id * words_per_set_;
    for (ElementId e : input.set(static_cast<SetId>(id))) {
      // Mix64 spreads structured ids uniformly; the low bits select the
      // toggled position (power-of-two width makes % a mask).
      uint64_t bit = Mix64(e) & mask;
      row[bit >> 6] ^= 1ULL << (bit & 63);
    }
  }
}

BitmapTable BitmapTable::Build(const SetCollection& input, uint32_t bits) {
  BitmapTable table = Prepare(input.size(), bits);
  table.BuildRange(input, 0, input.size());
  return table;
}

}  // namespace ssjoin::kernels
