// WtEnum: the paper's heuristic signature scheme for weighted SSJoins
// (Section 7, Figure 8).
//
// For an intersection SSJoin (w(r ∩ s) >= T), WtEnum conceptually
// enumerates every *minimal* subset s' of s with weighted size >= T
// (minimal: no proper subset reaches T, equivalently
// T <= w(s') < T + min_e w(e)), orders each s' by descending IDF weight,
// and emits the smallest prefix whose IDF weights sum to at least the
// pruning threshold TH (the whole s' if it never reaches TH). Two sets
// with w(r ∩ s) >= T share a minimal subset of their intersection —
// minimality is intrinsic to the subset — hence share its prefix.
//
// Implementation notes:
//   - We never materialize the minimal subsets. A DFS over the elements in
//     descending IDF order builds prefixes incrementally; once a branch's
//     prefix is frozen (IDF sum reached TH), every minimal subset in that
//     subtree yields the same prefix, so the subtree collapses to a single
//     existence check ("can the chosen prefix extend to a minimal
//     subset?"), answered greedily (provably correct when the ordering
//     weights equal the size weights, i.e. the IDF case) with a bounded
//     recursive fallback otherwise. This is what keeps the signature count
//     small "in practice" as the paper observes — and keeps generation
//     time proportional to the number of *distinct* prefixes.
//   - TH defaults to log(max(|R|, |S|)): a subset that heavy occurs in one
//     input set in expectation (Section 7), so prefixes rarely collide.
//   - Weighted-jaccard SSJoins reduce to intersection SSJoins via the
//     Section 5 machinery over *weighted* sizes: geometric size intervals
//     I_i = [b_i, b_{i+1}) with b_{i+1} = b_i / gamma, per-instance
//     thresholds T_i = 2 gamma/(1+gamma) b_{i-1}, and interval tags on the
//     signatures.
//   - Enumeration is budgeted (`max_nodes_per_set`). Exceeding the budget
//     (pathological weight distributions only; see DESIGN.md) sets
//     overflowed() and may lose completeness for the offending set; call
//     Validate() to pre-check a collection and get a Status instead.

#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/signature_scheme.h"
#include "core/weighted.h"
#include "util/hashing.h"
#include "util/status.h"

namespace ssjoin {

struct WtEnumParams {
  /// Pruning threshold TH (Figure 8). Use
  /// IdfWeights::DefaultPruningThreshold() unless tuning.
  double pruning_threshold = 0;
  uint64_t seed = 0x9E3779B9;
  /// DFS node budget per set per tag (safety valve; see header comment).
  uint64_t max_nodes_per_set = 1 << 20;
};

/// \brief WtEnum signature scheme (intersection and weighted-jaccard
/// modes).
class WtEnumScheme final : public SignatureScheme {
 public:
  /// Intersection mode: covers pairs with w(r ∩ s) >= threshold.
  /// `size_weights` are the weights defining the predicate (Figure 8
  /// step 2); `order_weights` are the IDF weights used for ordering and TH
  /// accounting (step 3). Pass the same function twice when the predicate
  /// weights are themselves IDF (the common case).
  static Result<WtEnumScheme> CreateOverlap(WeightFunction size_weights,
                                            WeightFunction order_weights,
                                            double threshold,
                                            const WtEnumParams& params);

  /// Weighted-jaccard mode: covers pairs with weighted jaccard >= gamma.
  /// `min_weighted_size` must be a positive lower bound on the weighted
  /// size of every nonempty input set (anchors the size intervals).
  static Result<WtEnumScheme> CreateJaccard(WeightFunction size_weights,
                                            WeightFunction order_weights,
                                            double gamma,
                                            double min_weighted_size,
                                            const WtEnumParams& params);

  std::string Name() const override;

  void Generate(std::span<const ElementId> set,
                std::vector<Signature>* out) const override;

  /// Dry-runs generation over `input` and fails if any set exhausts the
  /// enumeration budget (in which case Generate would be incomplete for
  /// it). Suggested before joining unfamiliar data.
  Status Validate(const SetCollection& input) const;

  /// True if any Generate call so far exhausted its budget.
  bool overflowed() const { return overflowed_; }

  /// The weighted-size interval index used in jaccard mode (exposed for
  /// tests). Requires weighted_size >= min_weighted_size.
  uint32_t IntervalIndex(double weighted_size) const;

 private:
  WtEnumScheme() = default;

  // Enumerates prefixes for one (threshold, tag) instance.
  void EnumerateForThreshold(std::span<const ElementId> set, double threshold,
                             uint64_t tag, std::vector<Signature>* out) const;

  WeightFunction size_weights_;
  WeightFunction order_weights_;
  WtEnumParams params_;
  // Hasher state after folding the seed, computed once at Create time:
  // each EnumerateForThreshold call copies this instead of re-running
  // the constructor's Mix64 chain (value-exact hoist; the per-element
  // mixes are likewise precomputed into Entry::mixed_element).
  SequenceHasher seeded_root_{0};
  bool jaccard_mode_ = false;
  double threshold_ = 0;  // overlap mode
  double gamma_ = 0;      // jaccard mode
  double base_size_ = 0;  // jaccard mode: b_0 = min weighted size
  double growth_ = 0;     // jaccard mode: interval growth factor ~ 1/gamma
  // Atomic because Generate may run concurrently across join worker
  // threads (JoinOptions::num_threads > 1); relaxed ordering suffices for
  // a sticky diagnostic flag. Copy/move load the current value so the
  // scheme stays movable (it travels through Result<WtEnumScheme>).
  struct RelaxedFlag {
    std::atomic<bool> value{false};
    RelaxedFlag() = default;
    RelaxedFlag(const RelaxedFlag& other)
        : value(other.value.load(std::memory_order_relaxed)) {}
    RelaxedFlag& operator=(const RelaxedFlag& other) {
      value.store(other.value.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      return *this;
    }
    RelaxedFlag& operator=(bool b) {
      value.store(b, std::memory_order_relaxed);
      return *this;
    }
    operator bool() const { return value.load(std::memory_order_relaxed); }
  };
  mutable RelaxedFlag overflowed_;
};

}  // namespace ssjoin
