// Core identifiers shared by all SSJoin components.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "data/collection.h"

namespace ssjoin {

/// A signature value. Signature schemes reduce whatever structure they
/// project out of a set (partition projections, prefixes, minhash tuples)
/// to a fixed-width hash (paper Section 4.2); 64 bits keeps accidental
/// cross-structure collisions negligible at millions of sets.
using Signature = uint64_t;

/// One joined output pair (r from the left input, s from the right input;
/// for self-joins r < s).
using SetPair = std::pair<SetId, SetId>;

/// Packs a pair of set ids into one 64-bit key (for dedup hash sets).
constexpr uint64_t PackPair(SetId a, SetId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

constexpr SetPair UnpackPair(uint64_t packed) {
  return {static_cast<SetId>(packed >> 32),
          static_cast<SetId>(packed & 0xffffffffULL)};
}

}  // namespace ssjoin
