// General-predicate SSJoin (paper Section 6).
//
// The jaccard construction of Section 5 generalizes to any predicate that
// yields (1) bounds on the sizes of joinable partners and (2) a hamming
// bound for joinable pairs — both of which core/predicate.h derives
// mechanically from the predicate's MinOverlap. GeneralPartEnumScheme
// packages that: size intervals from BuildJoinableSizeIntervals, one
// hamming PartEnum instance per interval with threshold
// MaxHammingForSizeRange(I_{i-1} ∪ I_i), and interval tags.
//
// This is the scheme that handles, e.g., |r∩s| >= 0.9 * max(|r|, |s|) —
// a predicate LSH has no locality-sensitive hash family for (one of the
// paper's arguments for exact schemes).

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/partenum.h"
#include "core/predicate.h"
#include "core/signature_scheme.h"
#include "util/status.h"

namespace ssjoin {

struct GeneralPartEnumParams {
  /// Upper bound on input set sizes.
  uint32_t max_set_size = 0;
  uint64_t seed = 0x9E3779B9;
  /// Picks (n1, n2) per interval threshold (default PartEnumParams::Default).
  std::function<PartEnumParams(uint32_t k)> chooser;
};

class GeneralPartEnumScheme final : public SignatureScheme {
 public:
  /// Builds the scheme for `predicate`. Fails if the predicate admits
  /// unbounded hamming distance within some interval (nothing to filter
  /// on) — the Section 6 condition.
  static Result<GeneralPartEnumScheme> Create(
      std::shared_ptr<const Predicate> predicate,
      const GeneralPartEnumParams& params);

  std::string Name() const override;

  void Generate(std::span<const ElementId> set,
                std::vector<Signature>* out) const override;

  const std::vector<SizeRange>& intervals() const { return intervals_; }

  /// Per-sub-instance hamming thresholds (exposed for tests).
  std::vector<uint32_t> InstanceThresholds() const;

 private:
  GeneralPartEnumScheme() = default;

  std::shared_ptr<const Predicate> predicate_;
  uint32_t max_set_size_ = 0;
  std::vector<SizeRange> intervals_;
  std::vector<std::unique_ptr<PartEnumScheme>> instances_;
};

}  // namespace ssjoin
