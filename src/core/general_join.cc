#include "core/general_join.h"

#include <span>
#include <sstream>

#include "core/kernels/hash_kernels.h"
#include "util/check.h"
#include "util/hashing.h"

namespace ssjoin {

namespace {
constexpr Signature kEmptySetSignature = 0x6E4A'0000'E317'70ADULL;
}  // namespace

Result<GeneralPartEnumScheme> GeneralPartEnumScheme::Create(
    std::shared_ptr<const Predicate> predicate,
    const GeneralPartEnumParams& params) {
  if (!predicate) {
    return Status::InvalidArgument("GeneralPartEnum: predicate is null");
  }
  if (params.max_set_size == 0) {
    return Status::InvalidArgument(
        "GeneralPartEnum: max_set_size must be >= the largest input set");
  }
  GeneralPartEnumScheme scheme;
  scheme.predicate_ = std::move(predicate);
  scheme.max_set_size_ = params.max_set_size;
  scheme.intervals_ =
      BuildJoinableSizeIntervals(*scheme.predicate_, params.max_set_size);

  std::function<PartEnumParams(uint32_t)> chooser = params.chooser;
  if (!chooser) {
    chooser = [](uint32_t k) { return PartEnumParams::Default(k); };
  }

  // Sub-instance i covers sizes in I_{i-1} ∪ I_i (plus one trailing
  // instance for the last interval's (i+1)-tags, which only ever holds
  // pairs from within I_last).
  size_t num_instances = scheme.intervals_.size() + 1;
  for (size_t i = 0; i < num_instances; ++i) {
    uint32_t lo, hi;
    if (i < scheme.intervals_.size()) {
      lo = i > 0 ? scheme.intervals_[i - 1].lo : scheme.intervals_[i].lo;
      hi = scheme.intervals_[i].hi;
    } else {
      lo = scheme.intervals_.back().lo;
      hi = scheme.intervals_.back().hi;
    }
    std::optional<uint32_t> k =
        scheme.predicate_->MaxHammingForSizeRange(lo, hi);
    // No joinable pair within this instance: a k=0 PartEnum is a valid
    // placeholder (its collisions are discarded by the post-filter).
    PartEnumParams pe = chooser(k.value_or(0));
    pe.k = k.value_or(0);
    pe.seed = params.seed;
    pe.n1 = std::max<uint32_t>(1, std::min(pe.n1, pe.k + 1));
    pe.n2 = std::max<uint32_t>(1, pe.n2);
    while (static_cast<uint64_t>(pe.n1) * pe.n2 <=
           static_cast<uint64_t>(pe.k) + 1) {
      ++pe.n2;
    }
    auto instance = PartEnumScheme::Create(pe);
    if (!instance.ok()) return instance.status();
    scheme.instances_.push_back(
        std::make_unique<PartEnumScheme>(std::move(instance).value()));
  }
  return scheme;
}

std::string GeneralPartEnumScheme::Name() const {
  std::ostringstream os;
  os << "GPEN(" << predicate_->Name() << ",intervals=" << intervals_.size()
     << ")";
  return os.str();
}

std::vector<uint32_t> GeneralPartEnumScheme::InstanceThresholds() const {
  std::vector<uint32_t> out;
  out.reserve(instances_.size());
  for (const auto& instance : instances_) {
    out.push_back(instance->params().k);
  }
  return out;
}

void GeneralPartEnumScheme::Generate(std::span<const ElementId> set,
                                     std::vector<Signature>* out) const {
  if (set.empty()) {
    // Empty sets can only be covered against each other (see predicate.h:
    // a nonempty partner needs positive overlap to join, which an empty
    // set cannot supply under this predicate class).
    out->push_back(kEmptySetSignature);
    return;
  }
  SSJOIN_CHECK(set.size() <= max_set_size_,
               "set of {} elements exceeds the indexed maximum {}",
               set.size(), max_set_size_);
  uint32_t size = static_cast<uint32_t>(set.size());
  size_t i = 0;
  while (i + 1 < intervals_.size() && !intervals_[i].Contains(size)) ++i;
  SSJOIN_CHECK(intervals_[i].Contains(size),
               "size {} not covered by any joinable-size interval "
               "(scan stopped at interval {} of {})",
               size, i, intervals_.size());
  for (size_t tag : {i, i + 1}) {
    size_t before = out->size();
    instances_[tag]->Generate(set, out);
    // Batched tag combine (4-wide, core/kernels/hash_kernels.h);
    // value-exact with HashCombine(Mix64(tag + 1), sig) per signature.
    kernels::HashCombineBatch(
        Mix64(static_cast<uint64_t>(tag) + 1),
        std::span<Signature>(out->data() + before, out->size() - before));
  }
}

}  // namespace ssjoin
