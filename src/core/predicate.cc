#include "core/predicate.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "core/kernels/intersect.h"
#include "util/check.h"

namespace ssjoin {

namespace {
// Relative epsilon applied to float-valued thresholds so that pairs lying
// exactly on a predicate boundary (e.g. jaccard exactly 0.8) are accepted
// regardless of rounding direction.
constexpr double kEps = 1e-9;

double Slack(double value) { return kEps * std::max(1.0, std::fabs(value)); }
}  // namespace

bool Predicate::Matches(uint32_t size_r, uint32_t size_s,
                        uint32_t overlap) const {
  double required = MinOverlap(size_r, size_s);
  return static_cast<double>(overlap) + Slack(required) >= required;
}

bool Predicate::Evaluate(std::span<const ElementId> r,
                         std::span<const ElementId> s) const {
  // Dispatched kernel (SIMD / galloping / SWAR, core/kernels/intersect.h);
  // bit-exact with util/bit_vector.h's scalar SortedIntersectionSize.
  uint32_t overlap = kernels::IntersectSize(r, s);
  return Matches(static_cast<uint32_t>(r.size()),
                 static_cast<uint32_t>(s.size()), overlap);
}

std::optional<SizeRange> Predicate::JoinableSizes(uint32_t size_r,
                                                  uint32_t max_size) const {
  // Generic derivation: size |s| is joinable iff some intersection value
  // can satisfy the predicate, i.e. MinOverlap <= min(|r|, |s|). The
  // feasible set may in principle be non-contiguous; we return its convex
  // envelope, which is complete (never excludes a joinable size).
  std::optional<uint32_t> lo, hi;
  for (uint32_t s = 0; s <= max_size; ++s) {
    double required = MinOverlap(size_r, s);
    double capacity = static_cast<double>(std::min(size_r, s));
    if (required <= capacity + Slack(required)) {
      if (!lo) lo = s;
      hi = s;
    }
  }
  if (!lo) return std::nullopt;
  return SizeRange{*lo, *hi};
}

std::optional<uint32_t> Predicate::MaxHamming(uint32_t size_r,
                                              uint32_t size_s) const {
  double required = MinOverlap(size_r, size_s);
  double min_overlap = std::max(0.0, std::ceil(required - Slack(required)));
  if (min_overlap > static_cast<double>(std::min(size_r, size_s))) {
    return std::nullopt;  // sizes cannot join at all
  }
  // Hd = |r| + |s| - 2|r∩s|, maximized at minimum feasible intersection.
  double hd = static_cast<double>(size_r) + size_s - 2.0 * min_overlap;
  return static_cast<uint32_t>(std::max(0.0, hd));
}

std::optional<uint32_t> Predicate::MaxHammingForSizeRange(uint32_t lo,
                                                          uint32_t hi) const {
  std::optional<uint32_t> best;
  for (uint32_t a = lo; a <= hi; ++a) {
    for (uint32_t b = a; b <= hi; ++b) {
      std::optional<uint32_t> hd = MaxHamming(a, b);
      if (hd && (!best || *hd > *best)) best = hd;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// JaccardPredicate

JaccardPredicate::JaccardPredicate(double gamma) : gamma_(gamma) {
  SSJOIN_CHECK(gamma > 0.0 && gamma <= 1.0,
               "jaccard threshold out of (0,1] (got {})", gamma);
}

std::string JaccardPredicate::Name() const {
  std::ostringstream os;
  os << "jaccard>=" << gamma_;
  return os.str();
}

double JaccardPredicate::MinOverlap(uint32_t size_r, uint32_t size_s) const {
  // Js >= gamma  <=>  |r∩s| >= gamma/(1+gamma) * (|r|+|s|)  (Section 2.3).
  return gamma_ / (1.0 + gamma_) *
         (static_cast<double>(size_r) + static_cast<double>(size_s));
}

bool JaccardPredicate::Matches(uint32_t size_r, uint32_t size_s,
                               uint32_t overlap) const {
  uint32_t union_size = size_r + size_s - overlap;
  if (union_size == 0) return true;  // both empty: identical sets
  return static_cast<double>(overlap) + Slack(gamma_ * union_size) >=
         gamma_ * static_cast<double>(union_size);
}

std::optional<SizeRange> JaccardPredicate::JoinableSizes(
    uint32_t size_r, uint32_t max_size) const {
  // Lemma 1: gamma <= |r|/|s| <= 1/gamma.
  double lo_f = gamma_ * size_r;
  double hi_f = static_cast<double>(size_r) / gamma_;
  uint32_t lo = static_cast<uint32_t>(std::ceil(lo_f - Slack(lo_f)));
  uint32_t hi = static_cast<uint32_t>(std::floor(hi_f + Slack(hi_f)));
  hi = std::min(hi, max_size);
  if (lo > hi) return std::nullopt;
  return SizeRange{lo, hi};
}

// ---------------------------------------------------------------------------
// HammingPredicate

HammingPredicate::HammingPredicate(uint32_t k) : k_(k) {}

std::string HammingPredicate::Name() const {
  return "hamming<=" + std::to_string(k_);
}

double HammingPredicate::MinOverlap(uint32_t size_r, uint32_t size_s) const {
  // Hd <= k  <=>  |r∩s| >= (|r| + |s| - k) / 2  (Section 2.2).
  return (static_cast<double>(size_r) + static_cast<double>(size_s) -
          static_cast<double>(k_)) /
         2.0;
}

bool HammingPredicate::Matches(uint32_t size_r, uint32_t size_s,
                               uint32_t overlap) const {
  // Exact integer form, no floats: Hd = |r| + |s| - 2|r∩s|.
  uint64_t hd = static_cast<uint64_t>(size_r) + size_s -
                2ULL * std::min({overlap, size_r, size_s});
  return hd <= k_;
}

std::optional<SizeRange> HammingPredicate::JoinableSizes(
    uint32_t size_r, uint32_t max_size) const {
  uint32_t lo = size_r > k_ ? size_r - k_ : 0;
  uint32_t hi = std::min(max_size, size_r + k_);
  if (lo > hi) return std::nullopt;
  return SizeRange{lo, hi};
}

// ---------------------------------------------------------------------------
// OverlapPredicate

OverlapPredicate::OverlapPredicate(uint32_t t) : t_(t) {}

std::string OverlapPredicate::Name() const {
  return "overlap>=" + std::to_string(t_);
}

double OverlapPredicate::MinOverlap(uint32_t, uint32_t) const {
  return static_cast<double>(t_);
}

// ---------------------------------------------------------------------------
// MaxFractionPredicate

MaxFractionPredicate::MaxFractionPredicate(double gamma) : gamma_(gamma) {
  SSJOIN_CHECK(gamma > 0.0 && gamma <= 1.0,
               "max-fraction threshold out of (0,1] (got {})", gamma);
}

std::string MaxFractionPredicate::Name() const {
  std::ostringstream os;
  os << "overlap>=" << gamma_ << "*max";
  return os.str();
}

double MaxFractionPredicate::MinOverlap(uint32_t size_r,
                                        uint32_t size_s) const {
  return gamma_ * static_cast<double>(std::max(size_r, size_s));
}

// ---------------------------------------------------------------------------
// MinRequiredOverlapForSize

double MinRequiredOverlapForSize(const Predicate& predicate, uint32_t size,
                                 uint32_t max_size) {
  std::optional<SizeRange> range =
      predicate.JoinableSizes(size, max_size * 2 + 16);
  if (!range) return std::numeric_limits<double>::infinity();
  double t = std::numeric_limits<double>::infinity();
  for (uint32_t partner = range->lo; partner <= range->hi; ++partner) {
    t = std::min(t, predicate.MinOverlap(size, partner));
  }
  return t;
}

// ---------------------------------------------------------------------------
// BuildJoinableSizeIntervals

std::vector<SizeRange> BuildJoinableSizeIntervals(const Predicate& predicate,
                                                  uint32_t max_size) {
  std::vector<SizeRange> intervals;
  uint32_t lo = 1;
  while (lo <= max_size) {
    // Give the predicate headroom beyond max_size so the interval's right
    // end is not artificially clipped (adjacency needs the true bound).
    uint32_t headroom = max_size * 2 + 16;
    std::optional<SizeRange> joinable = predicate.JoinableSizes(lo, headroom);
    uint32_t hi = joinable ? std::max(joinable->hi, lo) : lo;
    intervals.push_back(SizeRange{lo, hi});
    if (hi >= max_size) break;
    lo = hi + 1;
  }
  return intervals;
}

// ---------------------------------------------------------------------------
// ConjunctivePredicate

ConjunctivePredicate::ConjunctivePredicate(
    std::vector<LinearOverlapTerm> terms, std::string name)
    : terms_(std::move(terms)), name_(std::move(name)) {
  SSJOIN_CHECK(!terms_.empty(),
               "conjunctive predicate needs at least one term");
}

std::string ConjunctivePredicate::Name() const { return name_; }

double ConjunctivePredicate::MinOverlap(uint32_t size_r,
                                        uint32_t size_s) const {
  double required = terms_[0].Value(size_r, size_s);
  for (size_t i = 1; i < terms_.size(); ++i) {
    required = std::max(required, terms_[i].Value(size_r, size_s));
  }
  return required;
}

}  // namespace ssjoin
