// Proximity search over signature schemes.
//
// The paper closes (Section 9) noting it had "not yet explored if our
// signature schemes would be applicable to proximity search" — retrieving
// from an indexed collection all sets similar to a lookup set. They are:
// the Figure-2 correctness requirement (similar pairs share a signature)
// is symmetric between indexed sets and probes, so an inverted index over
// signatures answers threshold lookups exactly. This module implements
// that future-work extension: incremental inserts, exact lookups, and
// the same candidate-verification discipline as the join drivers.
//
// Usage:
//   SimilarityIndex index(scheme, predicate);
//   for (...) index.Insert(set);
//   std::vector<SetId> hits = index.Lookup(probe);   // ids of inserts

#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/predicate.h"
#include "core/signature_scheme.h"
#include "core/types.h"
#include "data/collection.h"

namespace ssjoin {

/// Statistics of lookups served so far (filtering-effectiveness view).
struct IndexStats {
  uint64_t inserted = 0;
  uint64_t lookups = 0;
  uint64_t candidates = 0;  // deduplicated, across all lookups
  uint64_t results = 0;
};

/// \brief Exact threshold-based similarity search.
///
/// The scheme and predicate must agree (the scheme complete for the
/// predicate), exactly as in the join drivers; then Lookup returns
/// *precisely* the inserted sets satisfying pred(indexed, probe) — no
/// misses, no false hits. With an LSH scheme the index inherits LSH's
/// probabilistic recall.
class SimilarityIndex {
 public:
  /// Both arguments are shared with the caller and must outlive the
  /// index's use.
  SimilarityIndex(SignatureSchemePtr scheme,
                  std::shared_ptr<const Predicate> predicate);

  /// Copies `set` (sorted, duplicate-free — e.g. a SetCollection member)
  /// into the index; returns its id (0-based insertion order).
  SetId Insert(std::span<const ElementId> set);

  /// Bulk-inserts a whole collection (ids follow collection order,
  /// offset by the current size).
  void InsertAll(const SetCollection& collection);

  /// All indexed ids whose set satisfies pred(indexed, probe), ascending.
  std::vector<SetId> Lookup(std::span<const ElementId> probe) const;

  /// Lookup returning only the best ids is intentionally absent: the
  /// paper's predicate class is threshold-based, not top-k.

  size_t size() const { return stored_.size(); }
  const IndexStats& stats() const { return stats_; }

  /// The stored set for an id returned by Lookup.
  std::span<const ElementId> set(SetId id) const {
    return std::span<const ElementId>(
        stored_elements_.data() + stored_[id].offset, stored_[id].size);
  }

 private:
  struct Entry {
    size_t offset;
    uint32_t size;
  };

  SignatureSchemePtr scheme_;
  std::shared_ptr<const Predicate> predicate_;
  std::vector<Entry> stored_;
  std::vector<ElementId> stored_elements_;  // CSR payload
  std::unordered_map<Signature, std::vector<SetId>> postings_;
  mutable IndexStats stats_;
};

}  // namespace ssjoin
