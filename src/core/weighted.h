// Weighted SSJoin support (paper Section 7).
//
// Each element carries a weight w(e) (a global property of the element,
// e.g. its IDF); the weighted size of a set is the sum of its element
// weights, and the weighted intersection/jaccard follow naturally. This
// module provides:
//   - WeightFunction and the weighted set measures,
//   - weighted threshold predicates (plug into the shared driver through
//     the virtual Predicate::Evaluate),
//   - the paper's weighted-to-unweighted reduction (make round(w(e))
//     copies of e), kept for comparison: Section 7 explains why it is
//     unsatisfactory (signature count blows up as O(alpha^2.39) under
//     weight scaling), which motivates WtEnum.

#pragma once

#include <functional>
#include <span>

#include "core/predicate.h"
#include "data/collection.h"

namespace ssjoin {

/// Global element weights. Must be positive for every element that occurs
/// in the input. Shared by both join sides.
using WeightFunction = std::function<double(ElementId)>;

/// Sum of weights of the (sorted, duplicate-free) set.
double WeightedSize(std::span<const ElementId> set,
                    const WeightFunction& weights);

/// Sum of weights of the intersection of two sorted sets.
double WeightedIntersection(std::span<const ElementId> r,
                            std::span<const ElementId> s,
                            const WeightFunction& weights);

/// Weighted jaccard similarity: w(r ∩ s) / w(r ∪ s); 1 if both empty.
double WeightedJaccard(std::span<const ElementId> r,
                       std::span<const ElementId> s,
                       const WeightFunction& weights);

/// Weighted jaccard threshold predicate: WJs(r, s) >= gamma.
///
/// Note: the size-based hooks (MinOverlap / JoinableSizes / MaxHamming)
/// are *not* informative for weighted predicates — cardinalities say
/// nothing about weights — so MinOverlap conservatively returns 0 and only
/// the element-level Evaluate is exact. Weighted signature schemes
/// (WtEnum, weighted LSH) carry their own weighted filtering internally.
class WeightedJaccardPredicate final : public Predicate {
 public:
  WeightedJaccardPredicate(double gamma, WeightFunction weights);

  std::string Name() const override;
  double MinOverlap(uint32_t size_r, uint32_t size_s) const override;
  bool Evaluate(std::span<const ElementId> r,
                std::span<const ElementId> s) const override;

  double gamma() const { return gamma_; }
  const WeightFunction& weights() const { return weights_; }

 private:
  double gamma_;
  WeightFunction weights_;
};

/// Weighted hamming distance: the total weight of the symmetric
/// difference, w((r-s) ∪ (s-r)) — the distance the Section 7 discussion
/// of weighted thresholds ("a weighted hamming SSJoin with threshold
/// alpha*k") refers to.
double WeightedHammingDistance(std::span<const ElementId> r,
                               std::span<const ElementId> s,
                               const WeightFunction& weights);

/// Weighted hamming threshold predicate: wHd(r, s) <= k.
class WeightedHammingPredicate final : public Predicate {
 public:
  WeightedHammingPredicate(double k, WeightFunction weights);

  std::string Name() const override;
  double MinOverlap(uint32_t size_r, uint32_t size_s) const override;
  bool Evaluate(std::span<const ElementId> r,
                std::span<const ElementId> s) const override;

  double k() const { return k_; }

 private:
  double k_;
  WeightFunction weights_;
};

/// Weighted intersection threshold predicate: w(r ∩ s) >= t (the
/// "intersection SSJoin" form WtEnum is presented for in Figure 8).
class WeightedOverlapPredicate final : public Predicate {
 public:
  WeightedOverlapPredicate(double t, WeightFunction weights);

  std::string Name() const override;
  double MinOverlap(uint32_t size_r, uint32_t size_s) const override;
  bool Evaluate(std::span<const ElementId> r,
                std::span<const ElementId> s) const override;

  double t() const { return t_; }
  const WeightFunction& weights() const { return weights_; }

 private:
  double t_;
  WeightFunction weights_;
};

/// The Section 7 weighted-to-unweighted reduction: replaces each set with
/// a bag containing round(scale * w(e)) copies of e (standard rounding),
/// re-encoded to set semantics via SetCollectionBuilder::AddBag. A
/// weighted hamming/jaccard join on the originals then maps to an
/// unweighted join on the result (up to rounding error — exactness
/// requires integral scaled weights). Kept to demonstrate the signature
/// blow-up WtEnum avoids; benchmarked in the ablation suite.
SetCollection ExpandWeightsToBag(const SetCollection& input,
                                 const WeightFunction& weights, double scale);

}  // namespace ssjoin
