#include "core/string_join.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "baselines/prefix_filter.h"
#include "core/predicate.h"
#include "core/signature_scheme.h"
#include "core/types.h"
#include "obs/join_telemetry.h"
#include "text/edit_distance.h"
#include "text/qgram.h"

namespace ssjoin {

namespace {

// Builds the candidate-filter scheme over q-gram bags. For prefix filter,
// element frequencies come from both inputs (s_bags may be null for
// self-joins).
Result<std::unique_ptr<SignatureScheme>> MakeScheme(
    const StringJoinOptions& options, uint32_t hamming_k,
    const SetCollection& r_bags, const SetCollection* s_bags) {
  switch (options.algorithm) {
    case StringJoinAlgorithm::kPartEnum: {
      PartEnumParams params = options.partenum_shape.value_or(
          PartEnumParams::Default(hamming_k));
      params.k = hamming_k;
      params.seed = options.seed;
      params.n1 = std::max<uint32_t>(1, std::min(params.n1, params.k + 1));
      while (static_cast<uint64_t>(params.n1) * params.n2 <=
             static_cast<uint64_t>(params.k) + 1) {
        ++params.n2;
      }
      auto created = PartEnumScheme::Create(params);
      if (!created.ok()) return created.status();
      return std::unique_ptr<SignatureScheme>(
          std::make_unique<PartEnumScheme>(std::move(created).value()));
    }
    case StringJoinAlgorithm::kPrefixFilter: {
      auto predicate = std::make_shared<HammingPredicate>(hamming_k);
      auto created =
          s_bags ? PrefixFilterScheme::Create(predicate, r_bags, *s_bags,
                                              PrefixFilterParams{})
                 : PrefixFilterScheme::Create(predicate, r_bags,
                                              PrefixFilterParams{});
      if (!created.ok()) return created.status();
      return std::unique_ptr<SignatureScheme>(
          std::make_unique<PrefixFilterScheme>(std::move(created).value()));
    }
  }
  return Status::InvalidArgument("unknown string-join algorithm");
}

// Deduplicated signature postings (signature, id), sorted by signature.
std::vector<std::pair<Signature, SetId>> BuildPostings(
    const SetCollection& bags, const SignatureScheme& scheme,
    uint64_t* signature_count) {
  std::vector<std::pair<Signature, SetId>> postings;
  std::vector<Signature> scratch;
  for (SetId id = 0; id < bags.size(); ++id) {
    scratch.clear();
    scheme.Generate(bags.set(id), &scratch);
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()),
                  scratch.end());
    *signature_count += scratch.size();
    for (Signature sig : scratch) postings.emplace_back(sig, id);
  }
  std::sort(postings.begin(), postings.end());
  return postings;
}

}  // namespace

uint32_t QgramHammingThreshold(uint32_t q, uint32_t k) { return 2 * q * k; }

Result<JoinResult> StringSimilaritySelfJoin(
    const std::vector<std::string>& strings,
    const StringJoinOptions& options) {
  if (options.q == 0) {
    return Status::InvalidArgument("StringJoin: q must be >= 1");
  }
  JoinResult result;
  obs::JoinTelemetry telem(options.tracer, options.metrics, "join");
  telem.Attr("mode", "string_self");
  telem.Attr("input_sets", static_cast<uint64_t>(strings.size()));
  uint32_t hamming_k =
      QgramHammingThreshold(options.q, options.edit_threshold);

  // Phase 1 (Figure 16): grams + signatures, "on-the-fly, in
  // application-level code". Gram extraction is part of SigGen.
  SetCollection bags;
  {
    auto scope =
        telem.Time(&result.stats.siggen_seconds);
    QgramExtractor extractor(QgramOptions{.q = options.q});
    bags = extractor.ExtractAllAsBags(strings);
  }

  SSJOIN_ASSIGN_OR_RETURN(
      std::unique_ptr<SignatureScheme> scheme,
      MakeScheme(options, hamming_k, bags, /*s_bags=*/nullptr));

  std::vector<std::pair<Signature, SetId>> postings;
  {
    auto scope =
        telem.Phase(obs::kPhaseSigGen, &result.stats.siggen_seconds);
    postings = BuildPostings(bags, *scheme, &result.stats.signatures_r);
    result.stats.signatures_s = result.stats.signatures_r;
  }

  std::unordered_set<uint64_t> candidates;
  {
    auto scope =
        telem.Phase(obs::kPhaseCandPair, &result.stats.candpair_seconds);
    size_t i = 0;
    while (i < postings.size()) {
      size_t j = i;
      while (j < postings.size() && postings[j].first == postings[i].first) {
        ++j;
      }
      uint64_t group = j - i;
      result.stats.signature_collisions += group * (group - 1) / 2;
      for (size_t a = i; a < j; ++a) {
        for (size_t b = a + 1; b < j; ++b) {
          SetId lo = std::min(postings[a].second, postings[b].second);
          SetId hi = std::max(postings[a].second, postings[b].second);
          if (lo != hi) candidates.insert(PackPair(lo, hi));
        }
      }
      i = j;
    }
    result.stats.candidates = candidates.size();
  }

  {
    auto scope = telem.Phase(obs::kPhasePostFilter,
                             &result.stats.postfilter_seconds);
    for (uint64_t packed : candidates) {
      auto [a, b] = UnpackPair(packed);
      if (WithinEditDistance(strings[a], strings[b],
                             options.edit_threshold)) {
        result.pairs.emplace_back(a, b);
        ++result.stats.results;
      } else {
        ++result.stats.false_positives;
      }
    }
    std::sort(result.pairs.begin(), result.pairs.end());
  }

  telem.Attr("results", result.stats.results);
  return result;
}

Result<JoinResult> StringSimilarityJoin(
    const std::vector<std::string>& r_strings,
    const std::vector<std::string>& s_strings,
    const StringJoinOptions& options) {
  if (options.q == 0) {
    return Status::InvalidArgument("StringJoin: q must be >= 1");
  }
  JoinResult result;
  obs::JoinTelemetry telem(options.tracer, options.metrics, "join");
  telem.Attr("mode", "string_binary");
  telem.Attr("input_sets_r", static_cast<uint64_t>(r_strings.size()));
  telem.Attr("input_sets_s", static_cast<uint64_t>(s_strings.size()));
  uint32_t hamming_k =
      QgramHammingThreshold(options.q, options.edit_threshold);

  SetCollection r_bags, s_bags;
  {
    auto scope =
        telem.Time(&result.stats.siggen_seconds);
    QgramExtractor extractor(QgramOptions{.q = options.q});
    r_bags = extractor.ExtractAllAsBags(r_strings);
    s_bags = extractor.ExtractAllAsBags(s_strings);
  }

  SSJOIN_ASSIGN_OR_RETURN(
      std::unique_ptr<SignatureScheme> scheme,
      MakeScheme(options, hamming_k, r_bags, &s_bags));

  std::vector<std::pair<Signature, SetId>> postings_r, postings_s;
  {
    auto scope =
        telem.Phase(obs::kPhaseSigGen, &result.stats.siggen_seconds);
    postings_r =
        BuildPostings(r_bags, *scheme, &result.stats.signatures_r);
    postings_s =
        BuildPostings(s_bags, *scheme, &result.stats.signatures_s);
  }

  std::unordered_set<uint64_t> candidates;
  {
    auto scope =
        telem.Phase(obs::kPhaseCandPair, &result.stats.candpair_seconds);
    size_t i = 0, j = 0;
    while (i < postings_r.size() && j < postings_s.size()) {
      Signature sig_r = postings_r[i].first;
      Signature sig_s = postings_s[j].first;
      if (sig_r < sig_s) {
        ++i;
      } else if (sig_s < sig_r) {
        ++j;
      } else {
        size_t ei = i, ej = j;
        while (ei < postings_r.size() && postings_r[ei].first == sig_r) ++ei;
        while (ej < postings_s.size() && postings_s[ej].first == sig_r) ++ej;
        result.stats.signature_collisions +=
            static_cast<uint64_t>(ei - i) * (ej - j);
        for (size_t a = i; a < ei; ++a) {
          for (size_t b = j; b < ej; ++b) {
            candidates.insert(
                PackPair(postings_r[a].second, postings_s[b].second));
          }
        }
        i = ei;
        j = ej;
      }
    }
    result.stats.candidates = candidates.size();
  }

  {
    auto scope = telem.Phase(obs::kPhasePostFilter,
                             &result.stats.postfilter_seconds);
    for (uint64_t packed : candidates) {
      auto [a, b] = UnpackPair(packed);
      if (WithinEditDistance(r_strings[a], s_strings[b],
                             options.edit_threshold)) {
        result.pairs.emplace_back(a, b);
        ++result.stats.results;
      } else {
        ++result.stats.false_positives;
      }
    }
    std::sort(result.pairs.begin(), result.pairs.end());
  }

  telem.Attr("results", result.stats.results);
  return result;
}

}  // namespace ssjoin
