#include "core/wtenum.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "util/check.h"
#include "util/hashing.h"
#include "util/logging.h"

namespace ssjoin {

namespace {

constexpr Signature kEmptySetSignature = 0x37E4'0000'E317'70ADULL;
constexpr double kEps = 1e-9;

// One element of the set under enumeration, with both weight systems.
struct Entry {
  ElementId element;
  uint64_t mixed_element;  // Mix64(element), computed once per set
  double size_weight;   // defines the predicate threshold T (step 2)
  double order_weight;  // IDF weight: ordering and TH accounting (step 3)
};

// DFS context for one (set, threshold) instance.
struct Enumeration {
  const std::vector<Entry>& entries;
  const std::vector<double>& suffix_size_weight;  // sum of size_weight from i
  double threshold;                               // T
  double pruning_threshold;                       // TH
  uint64_t budget;
  bool overflowed = false;
  std::unordered_set<Signature>* emitted;
  std::vector<Signature>* out;

  void Emit(Signature sig) {
    if (emitted->insert(sig).second) out->push_back(sig);
  }

  // Does any X ⊆ entries[idx..] complete `chosen` (with total size weight
  // `sum` < T and minimum size weight `min_w`) to a minimal subset?
  // Greedy in descending size weight is exact when size weights are
  // ordered like the processing order (the IDF case); otherwise fall back
  // to a budgeted exhaustive check.
  bool ExistsMinimalCompletion(size_t idx, double sum, double min_w) {
    // Greedy: add remaining elements in processing order (descending
    // order_weight, which equals descending size_weight in the IDF case).
    double greedy_sum = sum;
    double greedy_min = min_w;
    for (size_t i = idx; i < entries.size(); ++i) {
      greedy_sum += entries[i].size_weight;
      greedy_min = std::min(greedy_min, entries[i].size_weight);
      if (greedy_sum >= threshold) {
        if (greedy_sum - greedy_min < threshold) return true;
        break;  // greedy result not minimal; fall through to search
      }
    }
    if (sum + (suffix_size_weight[idx]) < threshold) return false;
    // Exhaustive fallback (rare; only when weight systems disagree).
    return SearchCompletion(idx, sum, min_w);
  }

  bool SearchCompletion(size_t idx, double sum, double min_w) {
    if (budget == 0) {
      overflowed = true;
      return true;  // claim existence: emitting extra prefixes is safe
    }
    --budget;
    if (idx >= entries.size()) return false;
    if (sum + suffix_size_weight[idx] < threshold) return false;
    // Include entries[idx].
    double new_sum = sum + entries[idx].size_weight;
    double new_min = std::min(min_w, entries[idx].size_weight);
    if (new_sum >= threshold) {
      if (new_sum - new_min < threshold) return true;
      // Crossing but non-minimal; a subset without some element crosses
      // too and is explored via the exclude branch.
    } else if (SearchCompletion(idx + 1, new_sum, new_min)) {
      return true;
    }
    // Exclude entries[idx].
    return SearchCompletion(idx + 1, sum, min_w);
  }

  // Main DFS. `prefix_hasher` carries the prefix built so far; `idf_sum`
  // its accumulated order weight; `frozen` whether TH was reached.
  void Dfs(size_t idx, double sum, double min_w, double idf_sum,
           SequenceHasher prefix_hasher) {
    if (budget == 0) {
      overflowed = true;
      return;
    }
    --budget;
    if (idx >= entries.size()) return;  // sum < T here, dead end
    if (sum + suffix_size_weight[idx] < threshold) return;  // unreachable

    // Branch 1: include entries[idx].
    {
      double new_sum = sum + entries[idx].size_weight;
      double new_min = std::min(min_w, entries[idx].size_weight);
      double new_idf = idf_sum + entries[idx].order_weight;
      // Fold the precomputed Mix64 — the DFS revisits each element once
      // per prefix, and the old per-visit Add() re-mixed it every time.
      SequenceHasher new_hasher = prefix_hasher;
      new_hasher.AddMixed(entries[idx].mixed_element);
      if (new_sum >= threshold) {
        // `chosen ∪ {idx}` crossed T: it is a candidate minimal subset.
        // Supersets are non-minimal, so the branch ends here either way.
        if (new_sum - new_min < threshold) {
          // Minimal. Its prefix: we only reach this point with an
          // unfrozen prefix, so the prefix is the whole chosen set —
          // whether TH was just reached or never (Figure 8 takes the
          // whole s' when its IDF weight stays below TH).
          Emit(new_hasher.Finish());
        }
      } else if (new_idf >= pruning_threshold) {
        // Prefix frozen below T: every minimal subset in this subtree has
        // this exact prefix, so emit once if any completion exists.
        if (ExistsMinimalCompletion(idx + 1, new_sum, new_min)) {
          Emit(new_hasher.Finish());
        }
      } else {
        Dfs(idx + 1, new_sum, new_min, new_idf, new_hasher);
      }
    }
    // Branch 2: exclude entries[idx].
    Dfs(idx + 1, sum, min_w, idf_sum, prefix_hasher);
  }
};

}  // namespace

Result<WtEnumScheme> WtEnumScheme::CreateOverlap(WeightFunction size_weights,
                                                 WeightFunction order_weights,
                                                 double threshold,
                                                 const WtEnumParams& params) {
  if (!size_weights || !order_weights) {
    return Status::InvalidArgument("WtEnum: weight function is null");
  }
  if (threshold <= 0) {
    return Status::InvalidArgument("WtEnum: threshold must be positive");
  }
  if (params.pruning_threshold <= 0) {
    return Status::InvalidArgument(
        "WtEnum: pruning_threshold must be positive (use "
        "IdfWeights::DefaultPruningThreshold())");
  }
  WtEnumScheme scheme;
  scheme.size_weights_ = std::move(size_weights);
  scheme.order_weights_ = std::move(order_weights);
  scheme.params_ = params;
  scheme.seeded_root_ = SequenceHasher(params.seed);
  scheme.jaccard_mode_ = false;
  scheme.threshold_ = threshold;
  return scheme;
}

Result<WtEnumScheme> WtEnumScheme::CreateJaccard(WeightFunction size_weights,
                                                 WeightFunction order_weights,
                                                 double gamma,
                                                 double min_weighted_size,
                                                 const WtEnumParams& params) {
  if (!size_weights || !order_weights) {
    return Status::InvalidArgument("WtEnum: weight function is null");
  }
  if (gamma <= 0 || gamma > 1) {
    return Status::InvalidArgument("WtEnum: gamma must be in (0,1]");
  }
  if (min_weighted_size <= 0) {
    return Status::InvalidArgument(
        "WtEnum: min_weighted_size must be positive");
  }
  if (params.pruning_threshold <= 0) {
    return Status::InvalidArgument(
        "WtEnum: pruning_threshold must be positive");
  }
  WtEnumScheme scheme;
  scheme.size_weights_ = std::move(size_weights);
  scheme.order_weights_ = std::move(order_weights);
  scheme.params_ = params;
  scheme.seeded_root_ = SequenceHasher(params.seed);
  scheme.jaccard_mode_ = true;
  scheme.gamma_ = gamma;
  scheme.base_size_ = min_weighted_size * (1.0 - kEps);
  // Slightly inflated growth so float rounding in weighted sizes can only
  // widen intervals (completeness over selectivity at the boundaries).
  scheme.growth_ = (1.0 / gamma) * (1.0 + kEps);
  return scheme;
}

std::string WtEnumScheme::Name() const {
  std::ostringstream os;
  if (jaccard_mode_) {
    os << "WEN(wjaccard>=" << gamma_ << ")";
  } else {
    os << "WEN(woverlap>=" << threshold_ << ")";
  }
  return os.str();
}

uint32_t WtEnumScheme::IntervalIndex(double weighted_size) const {
  SSJOIN_DCHECK(jaccard_mode_,
                "size intervals only exist for the jaccard reduction");
  SSJOIN_CHECK(weighted_size >= base_size_,
               "weighted size {} below the declared minimum {}; "
               "CreateJaccard was given a wrong min_weighted_size",
               weighted_size, base_size_);
  // index = max{ j >= 0 : base * growth^j <= ws }, computed by repeated
  // multiplication so neighbouring sets agree exactly on boundaries.
  uint32_t index = 0;
  double boundary = base_size_ * growth_;
  while (boundary <= weighted_size) {
    ++index;
    boundary *= growth_;
  }
  return index;
}

void WtEnumScheme::EnumerateForThreshold(std::span<const ElementId> set,
                                         double threshold, uint64_t tag,
                                         std::vector<Signature>* out) const {
  std::vector<Entry> entries;
  entries.reserve(set.size());
  for (ElementId e : set) {
    entries.push_back(Entry{e, Mix64(e), size_weights_(e),
                            order_weights_(e)});
  }
  // Descending IDF (order weight); ties by element id for determinism.
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    if (a.order_weight != b.order_weight) {
      return a.order_weight > b.order_weight;
    }
    return a.element < b.element;
  });
  for (size_t i = 0; i + 1 < entries.size(); ++i) {
    SSJOIN_DCHECK(entries[i].order_weight > entries[i + 1].order_weight ||
                      (entries[i].order_weight == entries[i + 1].order_weight &&
                       entries[i].element < entries[i + 1].element),
                  "enumeration order violated at position {}", i);
  }
  std::vector<double> suffix(entries.size() + 1, 0.0);
  for (size_t i = entries.size(); i > 0; --i) {
    SSJOIN_CHECK(entries[i - 1].size_weight > 0,
                 "element {} has non-positive size weight {}; WtEnum's "
                 "minimal-subset enumeration requires positive weights",
                 entries[i - 1].element, entries[i - 1].size_weight);
    suffix[i - 1] = suffix[i] + entries[i - 1].size_weight;
  }

  std::unordered_set<Signature> emitted;
  Enumeration enumeration{entries,
                          suffix,
                          threshold * (1.0 - kEps),
                          params_.pruning_threshold,
                          params_.max_nodes_per_set,
                          false,
                          &emitted,
                          out};
  // Copy the seeded state hoisted at Create time instead of re-running
  // the seed mix per (set, threshold) instance (wtenum.h note).
  SequenceHasher root = seeded_root_;
  root.Add(tag);
  enumeration.Dfs(0, 0.0, std::numeric_limits<double>::infinity(), 0.0, root);
  if (enumeration.overflowed) {
    overflowed_ = true;
    SSJOIN_LOG(Warn) << "WtEnum enumeration budget exhausted for a set of "
                     << set.size()
                     << " elements; results may miss pairs involving it";
  }
}

void WtEnumScheme::Generate(std::span<const ElementId> set,
                            std::vector<Signature>* out) const {
  if (set.empty()) {
    if (jaccard_mode_) out->push_back(kEmptySetSignature);
    return;  // empty sets cannot reach a positive overlap threshold
  }
  if (!jaccard_mode_) {
    EnumerateForThreshold(set, threshold_, /*tag=*/0, out);
    return;
  }
  double ws = WeightedSize(set, size_weights_);
  uint32_t i = IntervalIndex(ws);
  for (uint32_t tag : {i, i + 1}) {
    // Instance `tag` covers weighted sizes in I_{tag-1} ∪ I_tag; the
    // smallest possible pair sum is 2 * b_{tag-1}.
    double floor_size =
        base_size_ * std::pow(growth_, tag > 0 ? tag - 1 : 0);
    double instance_threshold =
        2.0 * gamma_ / (1.0 + gamma_) * floor_size;
    // A non-positive threshold would make every subset "minimal" and the
    // scheme degenerate to quadratic enumeration — always a caller bug
    // (min_weighted_size or gamma was zero/negative through rounding).
    SSJOIN_CHECK(instance_threshold > 0,
                 "instance threshold {} for tag {} not positive "
                 "(gamma={}, min weighted size={})",
                 instance_threshold, tag, gamma_, base_size_);
    EnumerateForThreshold(set, instance_threshold, tag + 1, out);
  }
}

Status WtEnumScheme::Validate(const SetCollection& input) const {
  bool saved = overflowed_;
  overflowed_ = false;
  std::vector<Signature> scratch;
  for (SetId id = 0; id < input.size(); ++id) {
    scratch.clear();
    Generate(input.set(id), &scratch);
    if (overflowed_) {
      overflowed_ = saved;
      return Status::OutOfRange(
          "WtEnum: enumeration budget exhausted for set " +
          std::to_string(id) + " (" + std::to_string(input.set_size(id)) +
          " elements); lower pruning_threshold or raise max_nodes_per_set");
    }
  }
  overflowed_ = saved;
  return Status::OK();
}

}  // namespace ssjoin
