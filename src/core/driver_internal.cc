// Definitions of the shared driver building blocks declared in
// core/driver_internal.h. These used to live in core/ssjoin.cc; the
// operator pipeline (core/pipeline) and the spill layer (core/spill) now
// consume them from here, so the exact candidate-generation and
// accounting code runs in every execution path — which is what makes the
// byte-identity contract (DESIGN.md Section 12) a structural property.

#include "core/driver_internal.h"

#include <algorithm>
#include <iterator>
#include <string>
#include <string_view>
#include <utility>

#include "core/kernels/flat_set.h"
#include "obs/explain.h"
#include "util/hashing.h"

namespace ssjoin::detail {

std::function<bool()> StopFn(ExecutionGuard* guard, JoinPhase phase) {
  if (guard == nullptr) return {};
  return [guard, phase] { return guard->ShouldStop(phase); };
}

// Publishes the end-of-join accounting — root-span attributes plus the
// join.* metrics — and, when the guard tripped, the trip cause as a span
// event on the root. Called on every exit path, so traces and metrics of
// tripped runs still carry the partial accounting the stats report.
// Everything published here is derived from JoinStats, which is
// byte-identical for every thread count (the determinism contract) —
// except the intersect-kernel dispatch deltas, which depend on the host
// CPU and are therefore published as kRuntime counters only.
// `isect_start` is the process-wide dispatch snapshot the driver took at
// entry; the delta is this join's kernel mix.
void FinishJoin(obs::JoinTelemetry& telem, const JoinResult& result,
                ExecutionGuard* guard, obs::ExplainReport* explain,
                const kernels::IntersectCounts& isect_start) {
  if (guard != nullptr && guard->tripped()) {
    std::string_view reason = TripReasonName(guard->trip_reason());
    telem.Event("guard_trip", reason);
    telem.Attr("trip", reason);
    if (explain != nullptr) explain->trip = std::string(reason);
  }
  const JoinStats& stats = result.stats;
  telem.Attr("signatures_r", stats.signatures_r);
  telem.Attr("signatures_s", stats.signatures_s);
  telem.Attr("signature_collisions", stats.signature_collisions);
  telem.Attr("candidates", stats.candidates);
  telem.Attr("results", stats.results);
  telem.Attr("false_positives", stats.false_positives);
  telem.AddCount("join.runs", 1);
  telem.AddCount("join.signatures", stats.signatures_r + stats.signatures_s);
  telem.AddCount("join.signature_collisions", stats.signature_collisions);
  telem.AddCount("join.candidates", stats.candidates);
  telem.AddCount("join.results", stats.results);
  telem.AddCount("join.false_positives", stats.false_positives);
  // Candidates kept per signature collision: the dedup effectiveness of
  // candidate generation (1.0 = every collision was a distinct pair).
  telem.SetGauge("join.candidate_dedup_ratio",
                 stats.signature_collisions > 0
                     ? static_cast<double>(stats.candidates) /
                           static_cast<double>(stats.signature_collisions)
                     : 1.0);
  telem.SetGauge("join.seconds.total", stats.TotalSeconds(),
                 obs::Stability::kRuntime);
  // Bitmap pre-filter effectiveness (DESIGN.md Section 11). The counters
  // derive from JoinStats, so they are deterministic; a disabled filter
  // reports 0 checked / 0 pruned and a 0.0 rate.
  telem.Attr("bitmap_filter_checked", stats.bitmap_filter_checked);
  telem.Attr("bitmap_filter_pruned", stats.bitmap_filter_pruned);
  telem.AddCount("join.bitmap_filter_checked", stats.bitmap_filter_checked);
  telem.AddCount("join.bitmap_filter_pruned", stats.bitmap_filter_pruned);
  telem.SetGauge("join.bitmap_prune_rate",
                 stats.bitmap_filter_checked > 0
                     ? static_cast<double>(stats.bitmap_filter_pruned) /
                           static_cast<double>(stats.bitmap_filter_checked)
                     : 0.0);
  // Which IntersectSize kernel verification actually ran: runtime-only
  // (the mix depends on __builtin_cpu_supports and the SSJOIN_SIMD build
  // gate, so it must stay out of the deterministic export).
  kernels::IntersectCounts isect = kernels::IntersectDispatchCounts();
  telem.AddCount("join.intersect.scalar", isect.scalar - isect_start.scalar,
                 obs::Stability::kRuntime);
  telem.AddCount("join.intersect.galloping",
                 isect.galloping - isect_start.galloping,
                 obs::Stability::kRuntime);
  telem.AddCount("join.intersect.simd", isect.simd - isect_start.simd,
                 obs::Stability::kRuntime);
  // Drift actuals: everything stable the advisor can predict, plus the
  // run outcome quantities (one-sided entries render without a ratio).
  // RecordActual is null-safe — a detached explain costs one compare.
  obs::RecordActual(explain, "join.signatures",
                    static_cast<double>(stats.signatures_r +
                                        stats.signatures_s));
  obs::RecordActual(explain, "join.signature_collisions",
                    static_cast<double>(stats.signature_collisions));
  obs::RecordActual(explain, "join.f2",
                    static_cast<double>(stats.F2()));
  obs::RecordActual(explain, "join.candidates",
                    static_cast<double>(stats.candidates));
  obs::RecordActual(explain, "join.results",
                    static_cast<double>(stats.results));
  obs::RecordActual(explain, "join.false_positives",
                    static_cast<double>(stats.false_positives));
  obs::RecordActual(explain, "join.bitmap_filter_checked",
                    static_cast<double>(stats.bitmap_filter_checked));
  obs::RecordActual(explain, "join.bitmap_filter_pruned",
                    static_cast<double>(stats.bitmap_filter_pruned));
  // Out-of-core accounting, emitted only when the join actually spilled
  // so in-memory runs keep their pre-spill telemetry shape (DESIGN.md
  // Section 12). All four counters are deterministic for a fixed input
  // and spill configuration.
  if (stats.spill_partitions > 0) {
    telem.Attr("spill_partitions", stats.spill_partitions);
    telem.Attr("spill_retries", stats.spill_retries);
    telem.AddCount("join.spill.partitions", stats.spill_partitions);
    telem.AddCount("join.spill.bytes_written", stats.spill_bytes_written);
    telem.AddCount("join.spill.bytes_read", stats.spill_bytes_read);
    telem.AddCount("join.spill.retries", stats.spill_retries);
    obs::RecordActual(explain, "join.spill.bytes_written",
                      static_cast<double>(stats.spill_bytes_written));
  }
  if (explain != nullptr) {
    explain->joins += 1;
    explain->siggen_seconds += stats.siggen_seconds;
    explain->candpair_seconds += stats.candpair_seconds;
    explain->postfilter_seconds += stats.postfilter_seconds;
  }
}

// Replaces *scratch with the deduplicated, sorted Sign(set).
void GenerateSorted(const SignatureScheme& scheme,
                    std::span<const ElementId> set,
                    std::vector<Signature>* scratch) {
  scratch->clear();
  scheme.Generate(set, scratch);
  std::sort(scratch->begin(), scratch->end());
  scratch->erase(std::unique(scratch->begin(), scratch->end()),
                 scratch->end());
}

// Shard assignment for candidate generation. All postings of one
// signature land in one shard, so a signature group never straddles
// shards: per-shard collision counts sum to exactly the serial total,
// and the Section 4 / Theorem 2 accounting is preserved.
size_t ShardOf(Signature sig, size_t shards) {
  return shards == 1 ? 0 : static_cast<size_t>(Mix64(sig) % shards);
}

namespace {

// Occurrence-count cutoff for the flat dedup table. Below it the table
// (sized for every insertion up front, so it never rehashes) stays
// cache-resident and one Mix64 probe per occurrence beats sort+unique
// handily; above it every probe is a cache miss into a multi-MiB table
// and the sequential sort wins back. Both paths produce the identical
// sorted duplicate-free vector, so the switch is invisible in output.
constexpr uint64_t kFlatDedupMaxInsertions = 1ull << 17;

// Dedup sink for the candidate shards: flat table or occurrence vector
// chosen once per shard from the exact insertion count.
class CandidateDedup {
 public:
  explicit CandidateDedup(uint64_t expected_insertions, size_t reserve) {
    use_flat_ = expected_insertions <= kFlatDedupMaxInsertions;
    if (use_flat_) {
      flat_.Reserve(std::max<size_t>(
          reserve, static_cast<size_t>(expected_insertions)));
    } else {
      occurrences_.reserve(static_cast<size_t>(expected_insertions));
    }
  }

  void Insert(uint64_t key) {
    if (use_flat_) {
      flat_.Insert(key);
    } else {
      occurrences_.push_back(key);
    }
  }

  std::vector<uint64_t> ExtractSorted() {
    if (use_flat_) return flat_.ExtractSorted();
    std::sort(occurrences_.begin(), occurrences_.end());
    occurrences_.erase(
        std::unique(occurrences_.begin(), occurrences_.end()),
        occurrences_.end());
    return std::move(occurrences_);
  }

 private:
  bool use_flat_ = true;
  kernels::FlatU64Set flat_;
  std::vector<uint64_t> occurrences_;
};

}  // namespace

// Self-join candidate generation over one shard's sorted postings.
// Within a signature group the (sig, id) postings are unique and sorted,
// so ids ascend: a < b already yields first < second.
ShardCandidates SelfJoinShard(const std::vector<Posting>& postings,
                              size_t reserve,
                              const std::function<bool()>& stop) {
  ShardCandidates out;
  // Pre-scan the signature groups for the exact insertion count
  // (== collisions >= distinct candidates): one sequential pass picks
  // the dedup strategy and sizes it in a single allocation.
  uint64_t expected = 0;
  for (size_t g = 0; g < postings.size();) {
    size_t h = g;
    while (h < postings.size() && postings[h].first == postings[g].first) {
      ++h;
    }
    uint64_t group = h - g;
    expected += group * (group - 1) / 2;
    g = h;
  }
  CandidateDedup dedup(expected, reserve);
  size_t i = 0;
  uint64_t groups = 0;
  while (i < postings.size()) {
    if (stop && (groups++ & 63u) == 0 && stop()) break;
    size_t j = i;
    while (j < postings.size() && postings[j].first == postings[i].first) {
      ++j;
    }
    uint64_t group = j - i;
    out.collisions += group * (group - 1) / 2;
    for (size_t a = i; a < j; ++a) {
      for (size_t b = a + 1; b < j; ++b) {
        dedup.Insert(PackPair(postings[a].second, postings[b].second));
      }
    }
    i = j;
  }
  out.packed = dedup.ExtractSorted();
  return out;
}

// Binary-join candidate generation: merge-join of the two shard slices.
ShardCandidates BinaryJoinShard(const std::vector<Posting>& postings_r,
                                const std::vector<Posting>& postings_s,
                                size_t reserve,
                                const std::function<bool()>& stop) {
  ShardCandidates out;
  // Same exact-insertion-count pre-scan as SelfJoinShard, via a dry
  // merge over the two posting lists.
  uint64_t expected = 0;
  for (size_t gi = 0, gj = 0;
       gi < postings_r.size() && gj < postings_s.size();) {
    Signature sr = postings_r[gi].first;
    Signature ss = postings_s[gj].first;
    if (sr < ss) {
      ++gi;
    } else if (ss < sr) {
      ++gj;
    } else {
      size_t ei = gi, ej = gj;
      while (ei < postings_r.size() && postings_r[ei].first == sr) ++ei;
      while (ej < postings_s.size() && postings_s[ej].first == sr) ++ej;
      expected += static_cast<uint64_t>(ei - gi) * (ej - gj);
      gi = ei;
      gj = ej;
    }
  }
  CandidateDedup dedup(expected, reserve);
  size_t i = 0, j = 0;
  uint64_t iters = 0;
  while (i < postings_r.size() && j < postings_s.size()) {
    if (stop && (iters++ & 1023u) == 0 && stop()) break;
    Signature sig_r = postings_r[i].first;
    Signature sig_s = postings_s[j].first;
    if (sig_r < sig_s) {
      ++i;
    } else if (sig_s < sig_r) {
      ++j;
    } else {
      size_t ei = i, ej = j;
      while (ei < postings_r.size() && postings_r[ei].first == sig_r) ++ei;
      while (ej < postings_s.size() && postings_s[ej].first == sig_r) ++ej;
      out.collisions += static_cast<uint64_t>(ei - i) * (ej - j);
      for (size_t a = i; a < ei; ++a) {
        for (size_t b = j; b < ej; ++b) {
          dedup.Insert(PackPair(postings_r[a].second, postings_s[b].second));
        }
      }
      i = ei;
      j = ej;
    }
  }
  out.packed = dedup.ExtractSorted();
  return out;
}

// Unions sorted duplicate-free candidate lists: log2(n) pairwise
// set_union rounds, the merges of each round running in parallel.
std::vector<uint64_t> UnionShards(std::vector<std::vector<uint64_t>> lists,
                                  ThreadPool& pool,
                                  const std::function<bool()>& stop) {
  if (lists.empty()) return {};
  while (lists.size() > 1) {
    size_t pairs = lists.size() / 2;
    std::vector<std::vector<uint64_t>> next(pairs + lists.size() % 2);
    ParallelFor(pool, pairs, [&](size_t begin, size_t end, size_t) {
      for (size_t p = begin; p < end; ++p) {
        if (stop && stop()) return;
        const std::vector<uint64_t>& a = lists[2 * p];
        const std::vector<uint64_t>& b = lists[2 * p + 1];
        std::vector<uint64_t> merged;
        merged.reserve(a.size() + b.size());
        std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                       std::back_inserter(merged));
        next[p] = std::move(merged);
      }
    });
    if (lists.size() % 2) next.back() = std::move(lists.back());
    lists = std::move(next);
    if (stop && stop()) break;
  }
  return std::move(lists[0]);
}

// Shared candidate-generation phase: run `shard_fn` per pool shard, then
// union the shard outputs. Fills stats->signature_collisions /
// stats->candidates and returns the global sorted duplicate-free
// candidate vector.
std::vector<uint64_t> GenerateCandidates(
    ThreadPool& pool,
    const std::function<ShardCandidates(size_t)>& shard_fn,
    const std::function<bool()>& stop, JoinStats* stats,
    obs::JoinTelemetry* telem) {
  size_t shards = pool.size();
  std::vector<ShardCandidates> per_shard(shards);
  obs::Histogram* shard_candidates =
      telem->metrics() != nullptr
          ? &telem->metrics()->histogram("join.shard.candidates")
          : nullptr;
  obs::Histogram* shard_micros =
      telem->metrics() != nullptr
          ? &telem->metrics()->histogram("join.shard.micros")
          : nullptr;
  pool.RunOnAll([&](size_t shard) {
    {
      // Runtime span per shard (lane = shard + 1; lane 0 is the control
      // thread) — excluded from the deterministic export.
      auto sample = telem->Sample("shard", shard_micros,
                                  static_cast<uint32_t>(shard) + 1);
      per_shard[shard] = shard_fn(shard);
      if (sample.span() != obs::kNoSpan) {
        telem->tracer()->SetAttr(
            sample.span(), "candidates",
            static_cast<uint64_t>(per_shard[shard].packed.size()));
      }
    }
    if (shard_candidates != nullptr) {
      shard_candidates->Record(per_shard[shard].packed.size());
    }
  });
  std::vector<std::vector<uint64_t>> lists;
  lists.reserve(shards);
  for (ShardCandidates& sc : per_shard) {
    stats->signature_collisions += sc.collisions;
    lists.push_back(std::move(sc.packed));
  }
  std::vector<uint64_t> candidates =
      UnionShards(std::move(lists), pool, stop);
  stats->candidates = candidates.size();
  return candidates;
}

// Builds the XOR bitmap signature table for `input` with the rows
// sharded across the pool. Row contents are per-set independent, so the
// table is byte-identical for every thread count.
kernels::BitmapTable BuildBitmap(const SetCollection& input, uint32_t bits,
                                 ThreadPool& pool) {
  kernels::BitmapTable table =
      kernels::BitmapTable::Prepare(input.size(), bits);
  ParallelFor(pool, input.size(),
              [&](size_t begin, size_t end, size_t) {
                table.BuildRange(input, begin, end);
              });
  return table;
}

}  // namespace ssjoin::detail
