// SSJoin predicates.
//
// Paper Section 2 defines the SSJoin predicate class
//     pred(r, s) = AND_i ( |r ∩ s| >= e_i )
// where each e_i is a numeric expression over |r| and |s|. Every predicate
// in this class is therefore a function of (|r|, |s|, |r ∩ s|) alone, which
// is the interface captured here: a Predicate supplies the minimum required
// intersection size for a given pair of set sizes.
//
// Section 6 identifies the subclass our algorithms can evaluate: predicates
// that additionally yield (1) upper/lower bounds on the sizes |s| joinable
// with a given |r| and (2) an upper bound on Hd(r, s) for joinable pairs.
// Both bounds are *derived* here from MinOverlap, so every concrete
// predicate gets them for free:
//   - Hd(r,s) = |r| + |s| - 2|r∩s| <= |r| + |s| - 2*ceil(MinOverlap), and
//   - a size |s| is joinable only if MinOverlap(|r|,|s|) <= min(|r|,|s|).

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/types.h"
#include "data/collection.h"

namespace ssjoin {

/// Inclusive range of set sizes.
struct SizeRange {
  uint32_t lo = 0;
  uint32_t hi = 0;
  bool Contains(uint32_t size) const { return lo <= size && size <= hi; }
};

/// \brief A set-similarity predicate from the paper's class (Section 2).
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// Display name, e.g. "jaccard>=0.9".
  virtual std::string Name() const = 0;

  /// The minimum intersection size required for sets of the given sizes
  /// to satisfy the predicate (the max over the paper's e_i expressions).
  /// May be negative or zero, meaning any intersection qualifies.
  virtual double MinOverlap(uint32_t size_r, uint32_t size_s) const = 0;

  /// True iff sets with the given sizes and intersection size satisfy the
  /// predicate. Default: overlap >= MinOverlap (with a relative epsilon so
  /// float rounding cannot flip exact-boundary cases).
  virtual bool Matches(uint32_t size_r, uint32_t size_s,
                       uint32_t overlap) const;

  /// Evaluates the predicate on two sorted element arrays. The default
  /// computes the intersection size and delegates to Matches; weighted
  /// predicates (core/weighted.h) override it since they depend on the
  /// actual elements, not just counts.
  virtual bool Evaluate(std::span<const ElementId> r,
                        std::span<const ElementId> s) const;

  /// Section 6 hook 1: sizes |s| that can possibly join with a set of size
  /// `size_r`, capped to [0, max_size]. Returns nullopt when no size in the
  /// cap is joinable. Derived from MinOverlap feasibility; concrete
  /// predicates may override with tighter closed forms.
  virtual std::optional<SizeRange> JoinableSizes(uint32_t size_r,
                                                 uint32_t max_size) const;

  /// Section 6 hook 2: an upper bound on Hd(r, s) over all joinable pairs
  /// with the given sizes, or nullopt if the sizes cannot join at all.
  std::optional<uint32_t> MaxHamming(uint32_t size_r, uint32_t size_s) const;

  /// Max of MaxHamming over all joinable size pairs within [lo, hi] on
  /// both sides — the hamming threshold the general join (Section 6) uses
  /// for one size-interval instance. nullopt if nothing joins.
  std::optional<uint32_t> MaxHammingForSizeRange(uint32_t lo,
                                                 uint32_t hi) const;
};

/// Jaccard threshold predicate: Js(r,s) = |r∩s| / |r∪s| >= gamma
/// (Section 2.3). Equivalent overlap form:
///   |r∩s| >= gamma/(1+gamma) * (|r| + |s|).
class JaccardPredicate final : public Predicate {
 public:
  /// gamma must be in (0, 1].
  explicit JaccardPredicate(double gamma);

  std::string Name() const override;
  double MinOverlap(uint32_t size_r, uint32_t size_s) const override;
  bool Matches(uint32_t size_r, uint32_t size_s,
               uint32_t overlap) const override;
  std::optional<SizeRange> JoinableSizes(uint32_t size_r,
                                         uint32_t max_size) const override;

  double gamma() const { return gamma_; }

 private:
  double gamma_;
};

/// Hamming threshold predicate: Hd(r,s) <= k (Section 2.2). Equivalent
/// overlap form: |r∩s| >= (|r| + |s| - k) / 2.
class HammingPredicate final : public Predicate {
 public:
  explicit HammingPredicate(uint32_t k);

  std::string Name() const override;
  double MinOverlap(uint32_t size_r, uint32_t size_s) const override;
  bool Matches(uint32_t size_r, uint32_t size_s,
               uint32_t overlap) const override;
  std::optional<SizeRange> JoinableSizes(uint32_t size_r,
                                         uint32_t max_size) const override;

  uint32_t k() const { return k_; }

 private:
  uint32_t k_;
};

/// Absolute-intersection predicate: |r∩s| >= t (the paper's introductory
/// example). Note Section 6 calls this out as having no finite joinable
/// size range in principle; our derived hooks cap it at the observed
/// max_size, which keeps the general join complete but unselective.
class OverlapPredicate final : public Predicate {
 public:
  explicit OverlapPredicate(uint32_t t);

  std::string Name() const override;
  double MinOverlap(uint32_t size_r, uint32_t size_s) const override;

  uint32_t t() const { return t_; }

 private:
  uint32_t t_;
};

/// The Section 6 worked example: |r∩s| >= gamma * max(|r|, |s|).
class MaxFractionPredicate final : public Predicate {
 public:
  explicit MaxFractionPredicate(double gamma);

  std::string Name() const override;
  double MinOverlap(uint32_t size_r, uint32_t size_s) const override;

  double gamma() const { return gamma_; }

 private:
  double gamma_;
};

/// The smallest intersection any joinable partner can have with a set of
/// size `size` (min of MinOverlap over the joinable partner sizes up to
/// max_size). Infinity when nothing can join; < 1 when some partner could
/// join with an empty intersection. This is the per-size overlap threshold
/// behind prefix filtering and Probe-Count's list pruning.
double MinRequiredOverlapForSize(const Predicate& predicate, uint32_t size,
                                 uint32_t max_size);

/// Partitions [1, max_size] into contiguous size intervals I_i = [l_i, r_i]
/// such that any two joinable sizes fall in the same or adjacent intervals
/// (the Section 5 construction generalized to any predicate with symmetric,
/// monotone JoinableSizes): r_i = max(l_i, JoinableSizes(l_i).hi). This is
/// the shared machinery behind size-based filtering, which the paper notes
/// "can be combined with any other signature scheme" (end of Section 5).
std::vector<SizeRange> BuildJoinableSizeIntervals(const Predicate& predicate,
                                                  uint32_t max_size);

/// One conjunct of the general class: |r∩s| >= c0 + cr*|r| + cs*|s|.
struct LinearOverlapTerm {
  double c0 = 0;
  double cr = 0;
  double cs = 0;
  double Value(uint32_t size_r, uint32_t size_s) const {
    return c0 + cr * size_r + cs * size_s;
  }
};

/// The paper's full predicate class: AND_i (|r∩s| >= e_i) with each e_i a
/// linear expression in |r| and |s| (Section 2). MinOverlap is the max of
/// the terms; the Section 6 hooks come from the base-class derivation.
class ConjunctivePredicate final : public Predicate {
 public:
  explicit ConjunctivePredicate(std::vector<LinearOverlapTerm> terms,
                                std::string name = "conjunctive");

  std::string Name() const override;
  double MinOverlap(uint32_t size_r, uint32_t size_s) const override;

  const std::vector<LinearOverlapTerm>& terms() const { return terms_; }

 private:
  std::vector<LinearOverlapTerm> terms_;
  std::string name_;
};

}  // namespace ssjoin
