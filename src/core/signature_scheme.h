// The signature-scheme abstraction (paper Section 3).
//
// A signature-based SSJoin algorithm (Figure 2) generates a signature set
// Sign(x) for every input set, finds all pairs whose signature sets
// overlap, and post-filters candidates with the exact predicate. The only
// difference between algorithms is the signature scheme, so the scheme is
// the unit of pluggability here; the shared driver lives in core/ssjoin.h.
//
// Correctness requirement (Section 3.1): whenever pred(r, s) holds,
// Sign(r) ∩ Sign(s) must be non-empty. Exact schemes guarantee this
// deterministically; LSH-style schemes only with probability (IsExact()
// returns false, and the join result may miss pairs).

#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/types.h"
#include "data/collection.h"

namespace ssjoin {

/// \brief Generates signatures for input sets.
///
/// Implementations hold all "hidden parameters" (Section 3.1): thresholds,
/// collection statistics (element frequencies), and random bits. The same
/// scheme instance must be used for both join inputs so hidden parameters
/// agree.
class SignatureScheme {
 public:
  virtual ~SignatureScheme() = default;

  /// Display name used in experiment output ("PEN", "PF", "LSH", ...).
  virtual std::string Name() const = 0;

  /// Appends Sign(set) to *out. `set` is sorted and duplicate-free (a
  /// SetCollection member). Implementations must not emit duplicate
  /// signatures for one set (they would inflate F2 accounting and
  /// candidate generation for no benefit).
  virtual void Generate(std::span<const ElementId> set,
                        std::vector<Signature>* out) const = 0;

  /// True if the scheme satisfies the correctness requirement
  /// deterministically (never misses a joinable pair).
  virtual bool IsExact() const { return true; }

  /// Convenience: Sign(set) as a fresh vector.
  std::vector<Signature> Signatures(std::span<const ElementId> set) const {
    std::vector<Signature> out;
    Generate(set, &out);
    return out;
  }
};

using SignatureSchemePtr = std::shared_ptr<const SignatureScheme>;

/// \brief Wrapper narrowing another scheme's signatures to `bits` bits.
///
/// The paper hashes signatures "into 4 byte values" (Section 4.2) and
/// argues the extra hash-collision false positives are negligible; this
/// library defaults to 64-bit signatures. Wrapping a scheme in
/// NarrowedScheme reproduces the paper's 32-bit setting (or any width)
/// for the hash-width ablation. Narrowing can only merge signatures, so
/// completeness is preserved — only filtering effectiveness can degrade.
class NarrowedScheme final : public SignatureScheme {
 public:
  NarrowedScheme(SignatureSchemePtr base, int bits)
      : base_(std::move(base)), bits_(bits) {}

  std::string Name() const override {
    return base_->Name() + "/" + std::to_string(bits_) + "bit";
  }

  bool IsExact() const override { return base_->IsExact(); }

  void Generate(std::span<const ElementId> set,
                std::vector<Signature>* out) const override;

 private:
  SignatureSchemePtr base_;
  int bits_;
};

}  // namespace ssjoin
