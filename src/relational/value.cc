#include "relational/value.h"

#include <functional>

#include "util/hashing.h"

namespace ssjoin::relational {

ValueType TypeOf(const Value& v) {
  switch (v.index()) {
    case 0:
      return ValueType::kInt64;
    case 1:
      return ValueType::kDouble;
    default:
      return ValueType::kString;
  }
}

std::string ToString(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::to_string(std::get<int64_t>(v));
    case 1:
      return std::to_string(std::get<double>(v));
    default:
      return std::get<std::string>(v);
  }
}

size_t HashValue(const Value& v) {
  switch (v.index()) {
    case 0:
      return static_cast<size_t>(
          Mix64(static_cast<uint64_t>(std::get<int64_t>(v))));
    case 1: {
      double d = std::get<double>(v);
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return static_cast<size_t>(Mix64(bits ^ 0xD0'0B1E));
    }
    default:
      return std::hash<std::string>{}(std::get<std::string>(v));
  }
}

}  // namespace ssjoin::relational
