#include "relational/sql_ssjoin.h"

#include <algorithm>

#include <optional>

#include "obs/join_telemetry.h"
#include "relational/index.h"
#include "relational/operators.h"
#include "relational/query.h"
#include "text/edit_distance.h"
#include "text/qgram.h"
#include "util/timer.h"

namespace ssjoin::relational {

namespace {

// Signature(id, sign) from application-level signature generation
// (step 1 of Figure 10 / 16: "data crosses DBMS boundaries").
Table BuildSignatureTable(const SetCollection& input,
                          const SignatureScheme& scheme,
                          JoinStats* stats) {
  Table signature(Schema{{"id", ValueType::kInt64},
                         {"sign", ValueType::kInt64}});
  std::vector<Signature> scratch;
  for (SetId id = 0; id < input.size(); ++id) {
    scratch.clear();
    scheme.Generate(input.set(id), &scratch);
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()),
                  scratch.end());
    stats->signatures_r += scratch.size();
    for (Signature sig : scratch) {
      signature.AppendUnchecked(Row{static_cast<int64_t>(id),
                                    static_cast<int64_t>(sig)});
    }
  }
  stats->signatures_s = stats->signatures_r;
  return signature;
}

// CandPair(id1, id2):
//   Select Distinct S1.id, S2.id From Signature S1, Signature S2
//   Where S1.sign = S2.sign and S1.id < S2.id        (Figure 11 / 17)
Result<Table> BuildCandPair(const Table& signature, JoinStats* stats,
                            PlanExplain* explain) {
  Stopwatch watch;
  SSJOIN_ASSIGN_OR_RETURN(
      Table joined,
      Query::From(signature)
          .Join(signature, {"sign"}, {"sign"}, "s1.", "s2.",
                [](const Row& row) {
                  return GetInt64(row, 0) < GetInt64(row, 2);
                })
          .Run());
  stats->signature_collisions += joined.num_rows();
  uint64_t joined_rows = joined.num_rows();
  explain->AddOp(
      "HashJoin",
      "Signature s1 JOIN Signature s2 ON sign WHERE s1.id < s2.id",
      signature.num_rows(), joined_rows, watch.ElapsedSeconds());
  watch.Restart();
  SSJOIN_ASSIGN_OR_RETURN(Table cand, Query::From(std::move(joined))
                                          .SelectDistinct({"s1.id", "s2.id"})
                                          .Run());
  stats->candidates = cand.num_rows();
  explain->AddOp("Distinct",
                 "SELECT DISTINCT s1.id, s2.id AS CandPair(id1, id2)",
                 joined_rows, cand.num_rows(), watch.ElapsedSeconds());
  return cand;
}

// Rough per-row footprint of a materialized relational table, for memory
// budgeting (Row = vector of 8-byte Values plus vector overhead).
size_t TableRowBytes(const Table& table) {
  return table.num_rows() *
         (table.schema().num_columns() * sizeof(int64_t) +
          sizeof(void*) * 3);
}

std::vector<SetPair> DecodePairs(const Table& output) {
  std::vector<SetPair> pairs;
  pairs.reserve(output.num_rows());
  for (size_t i = 0; i < output.num_rows(); ++i) {
    pairs.emplace_back(static_cast<SetId>(GetInt64(output.row(i), 0)),
                       static_cast<SetId>(GetInt64(output.row(i), 1)));
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace

namespace {

// CandPairIntersect via index-nested-loop over the clustered index on
// Set(id, elem): for each candidate pair, range-scan both sets and
// merge-count equal elements (rows within an id are elem-sorted).
Result<Table> IndexIntersect(const Table& cand,
                             const ClusteredIndex& set_index) {
  const Table& set_rel = set_index.table();
  Table intersect(Schema{{"s1.id", ValueType::kInt64},
                         {"s2.id", ValueType::kInt64},
                         {"isize", ValueType::kInt64}});
  for (size_t c = 0; c < cand.num_rows(); ++c) {
    int64_t id1 = GetInt64(cand.row(c), 0);
    int64_t id2 = GetInt64(cand.row(c), 1);
    auto [b1, e1] = set_index.EqualRange(id1);
    auto [b2, e2] = set_index.EqualRange(id2);
    int64_t isize = 0;
    size_t i = b1, j = b2;
    while (i < e1 && j < e2) {
      int64_t x = GetInt64(set_rel.row(i), 1);
      int64_t y = GetInt64(set_rel.row(j), 1);
      if (x == y) {
        ++isize;
        ++i;
        ++j;
      } else if (x < y) {
        ++i;
      } else {
        ++j;
      }
    }
    // Inner-join semantics of the Figure 11 plan: pairs with an empty
    // intersection produce no CandPairIntersect row.
    if (isize > 0) {
      intersect.AppendUnchecked(Row{id1, id2, isize});
    }
  }
  return intersect;
}

}  // namespace

Result<DbmsJoinResult> DbmsSelfJoin(const SetCollection& input,
                                    const SignatureScheme& scheme,
                                    const Predicate& predicate,
                                    IntersectPlan plan,
                                    ExecutionGuard* guard,
                                    obs::Tracer* tracer,
                                    obs::MetricsRegistry* metrics) {
  DbmsJoinResult result;
  obs::JoinTelemetry telem(tracer, metrics, "join");
  telem.Attr("mode", "dbms_self");
  telem.Attr("input_sets", static_cast<uint64_t>(input.size()));
  telem.Attr("plan", plan == IntersectPlan::kHashJoin ? "hash_join"
                                                      : "clustered_index");
  result.explain.plan = "dbms_self";
  result.explain.variant =
      plan == IntersectPlan::kHashJoin ? "hash_join" : "clustered_index";

  if (guard != nullptr) {
    guard->BindMetrics(metrics);
    SSJOIN_RETURN_NOT_OK(guard->Checkpoint(JoinPhase::kSigGen));
  }

  // Base relations (materialized in advance in the paper's setup, so not
  // counted in any phase): Set(id, elem), SetLen(id, len).
  Table set_rel(Schema{{"id", ValueType::kInt64},
                       {"elem", ValueType::kInt64}});
  Table setlen(Schema{{"id", ValueType::kInt64},
                      {"len", ValueType::kInt64}});
  for (SetId id = 0; id < input.size(); ++id) {
    for (ElementId e : input.set(id)) {
      set_rel.AppendUnchecked(Row{static_cast<int64_t>(id),
                                  static_cast<int64_t>(e)});
    }
    setlen.AppendUnchecked(Row{static_cast<int64_t>(id),
                               static_cast<int64_t>(input.set_size(id))});
  }
  // Clustered index on Set(id): sorted storage (built in advance too,
  // hence outside the timed phases). Elements within an id are kept
  // elem-sorted for the merge-based index plan.
  set_rel.SortBy({0, 1});
  std::optional<ClusteredIndex> set_index;
  if (plan == IntersectPlan::kClusteredIndex) {
    auto built = ClusteredIndex::Build(&set_rel, "id");
    if (!built.ok()) return built.status();
    set_index.emplace(std::move(built).value());
  }

  Table signature, cand;
  {
    auto scope =
        telem.Phase(obs::kPhaseSigGen, &result.stats.siggen_seconds);
    signature = BuildSignatureTable(input, scheme, &result.stats);
  }
  result.explain.AddOp(
      "SigGen", "Signature(id, sign) via application signature generation",
      input.size(), signature.num_rows(), result.stats.siggen_seconds);
  telem.PhaseAttr("rows", signature.num_rows());
  telem.AddCount("dbms.rows.signature", signature.num_rows());
  if (guard != nullptr) {
    // Plan-step barrier: the Signature relation is materialized.
    guard->ChargeMemory(TableRowBytes(signature));
    SSJOIN_RETURN_NOT_OK(guard->Checkpoint(JoinPhase::kCandGen));
  }
  {
    auto scope =
        telem.Phase(obs::kPhaseCandPair, &result.stats.candpair_seconds);
    SSJOIN_ASSIGN_OR_RETURN(
        cand, BuildCandPair(signature, &result.stats, &result.explain));
  }
  telem.PhaseAttr("rows", cand.num_rows());
  telem.AddCount("dbms.rows.candpair", cand.num_rows());
  if (guard != nullptr) {
    // Plan-step barrier: CandPair is materialized; the breaker can
    // already compare its size against the sample-free floor of 0
    // verified results (min-candidates gate keeps small joins safe).
    guard->ChargeMemory(TableRowBytes(cand));
    SSJOIN_RETURN_NOT_OK(guard->Checkpoint(JoinPhase::kVerify));
  }

  Table output(Schema{{"id1", ValueType::kInt64},
                      {"id2", ValueType::kInt64}});
  {
    auto scope = telem.Phase(obs::kPhasePostFilter,
                             &result.stats.postfilter_seconds);
    // CandPairIntersect(id1, id2, isize):
    //   Select C.id1, C.id2, Count(*) From CandPair C, Set S1, Set S2
    //   Where C.id1 = S1.id and C.id2 = S2.id and S1.elem = S2.elem
    //   Group By C.id1, C.id2                                 (Figure 11)
    // then Output's SetLen joins, all as one pipeline. Candidates with an
    // empty intersection never appear (inner joins), matching the
    // Figure 11 plan; they cannot satisfy a positive-overlap predicate
    // anyway.
    Table intersect;
    Stopwatch op_watch;
    if (plan == IntersectPlan::kHashJoin) {
      SSJOIN_ASSIGN_OR_RETURN(
          intersect,
          Query::From(cand)
              .Join(set_rel, {"s1.id"}, {"id"}, "", "s1.")
              .Join(set_rel, {"s2.id", "s1.elem"}, {"id", "elem"}, "",
                    "s2.")
              .GroupByCount({"s1.id", "s2.id"}, "isize")
              .Run());
      result.explain.AddOp(
          "GroupByCount",
          "CandPair JOIN Set s1 JOIN Set s2 ON elem GROUP BY id1, id2 AS "
          "CandPairIntersect(id1, id2, isize)",
          cand.num_rows(), intersect.num_rows(),
          op_watch.ElapsedSeconds());
    } else {
      SSJOIN_ASSIGN_OR_RETURN(intersect, IndexIntersect(cand, *set_index));
      result.explain.AddOp(
          "IndexIntersect",
          "merge-count over the clustered index on Set(id) AS "
          "CandPairIntersect(id1, id2, isize)",
          cand.num_rows(), intersect.num_rows(),
          op_watch.ElapsedSeconds());
    }
    uint64_t intersect_rows = intersect.num_rows();
    op_watch.Restart();
    SSJOIN_ASSIGN_OR_RETURN(
        Table with_len2,
        Query::From(std::move(intersect))
            .Join(setlen, {"s1.id"}, {"id"}, "", "l1.")
            .Join(setlen, {"s2.id"}, {"id"}, "", "l2.")
            .Run());
    result.explain.AddOp("HashJoin",
                         "CandPairIntersect JOIN SetLen l1 JOIN SetLen l2",
                         intersect_rows, with_len2.num_rows(),
                         op_watch.ElapsedSeconds());
    op_watch.Restart();
    int id1_col = with_len2.schema().IndexOf("s1.id");
    int id2_col = with_len2.schema().IndexOf("s2.id");
    int isize_col = with_len2.schema().IndexOf("isize");
    int len1_col = with_len2.schema().IndexOf("l1.len");
    int len2_col = with_len2.schema().IndexOf("l2.len");
    for (size_t i = 0; i < with_len2.num_rows(); ++i) {
      const Row& row = with_len2.row(i);
      uint32_t len1 = static_cast<uint32_t>(GetInt64(row, len1_col));
      uint32_t len2 = static_cast<uint32_t>(GetInt64(row, len2_col));
      uint32_t isize = static_cast<uint32_t>(GetInt64(row, isize_col));
      if (predicate.Matches(len1, len2, isize)) {
        output.AppendUnchecked(Row{row[id1_col], row[id2_col]});
        ++result.stats.results;
      } else {
        ++result.stats.false_positives;
      }
    }
    // Candidates that had zero intersection also count as false positives
    // for stats parity with the driver.
    result.stats.false_positives +=
        cand.num_rows() - with_len2.num_rows();
    result.explain.AddOp(
        "Filter", "predicate(l1.len, l2.len, isize) AS Output(id1, id2)",
        with_len2.num_rows(), output.num_rows(),
        op_watch.ElapsedSeconds());
  }
  telem.PhaseAttr("rows", output.num_rows());
  telem.AddCount("dbms.rows.output", output.num_rows());
  telem.Attr("results", result.stats.results);
  if (guard != nullptr) {
    SSJOIN_RETURN_NOT_OK(guard->CheckBreaker(
        JoinPhase::kVerify, result.stats.candidates, result.stats.results));
    SSJOIN_RETURN_NOT_OK(guard->Checkpoint(JoinPhase::kVerify));
  }

  result.pairs = DecodePairs(output);
  result.output = std::move(output);
  return result;
}

Result<DbmsJoinResult> DbmsStringEditSelfJoin(
    const std::vector<std::string>& strings, uint32_t edit_threshold,
    uint32_t q, const SignatureScheme& scheme, ExecutionGuard* guard,
    obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  DbmsJoinResult result;
  obs::JoinTelemetry telem(tracer, metrics, "join");
  telem.Attr("mode", "dbms_string_edit");
  telem.Attr("input_sets", static_cast<uint64_t>(strings.size()));
  result.explain.plan = "dbms_string_edit";

  if (guard != nullptr) {
    guard->BindMetrics(metrics);
    SSJOIN_RETURN_NOT_OK(guard->Checkpoint(JoinPhase::kSigGen));
  }

  // String(id, str) is the base relation; n-gram bags are generated
  // on-the-fly in application code during signature generation
  // (Figure 16: "we do not explicitly materialize the n-gram bags").
  Table signature, cand;
  {
    auto scope =
        telem.Phase(obs::kPhaseSigGen, &result.stats.siggen_seconds);
    QgramExtractor extractor(QgramOptions{.q = q});
    SetCollectionBuilder builder;
    for (const std::string& s : strings) {
      builder.AddBag(extractor.Extract(s));
    }
    SetCollection bags = builder.Build();
    signature = BuildSignatureTable(bags, scheme, &result.stats);
  }
  result.explain.AddOp(
      "SigGen",
      "Signature(id, sign) via q-gram bags + application signature "
      "generation",
      strings.size(), signature.num_rows(), result.stats.siggen_seconds);
  telem.PhaseAttr("rows", signature.num_rows());
  telem.AddCount("dbms.rows.signature", signature.num_rows());
  if (guard != nullptr) {
    guard->ChargeMemory(TableRowBytes(signature));
    SSJOIN_RETURN_NOT_OK(guard->Checkpoint(JoinPhase::kCandGen));
  }
  {
    auto scope =
        telem.Phase(obs::kPhaseCandPair, &result.stats.candpair_seconds);
    SSJOIN_ASSIGN_OR_RETURN(
        cand, BuildCandPair(signature, &result.stats, &result.explain));
  }
  telem.PhaseAttr("rows", cand.num_rows());
  telem.AddCount("dbms.rows.candpair", cand.num_rows());
  if (guard != nullptr) {
    guard->ChargeMemory(TableRowBytes(cand));
    SSJOIN_RETURN_NOT_OK(guard->Checkpoint(JoinPhase::kVerify));
  }

  Table output(Schema{{"id1", ValueType::kInt64},
                      {"id2", ValueType::kInt64}});
  {
    // Output: retrieve strings by id and check EDIT(s1, s2) <= k in
    // application code (Figure 17). No SSJoin-level hamming post-filter,
    // as the paper found it not to improve overall performance.
    auto scope = telem.Phase(obs::kPhasePostFilter,
                             &result.stats.postfilter_seconds);
    for (size_t i = 0; i < cand.num_rows(); ++i) {
      int64_t a = GetInt64(cand.row(i), 0);
      int64_t b = GetInt64(cand.row(i), 1);
      if (WithinEditDistance(strings[static_cast<size_t>(a)],
                             strings[static_cast<size_t>(b)],
                             edit_threshold)) {
        output.AppendUnchecked(Row{a, b});
        ++result.stats.results;
      } else {
        ++result.stats.false_positives;
      }
    }
  }
  result.explain.AddOp(
      "Filter", "EDIT(s1, s2) <= k in application code AS Output(id1, id2)",
      cand.num_rows(), output.num_rows(),
      result.stats.postfilter_seconds);
  telem.PhaseAttr("rows", output.num_rows());
  telem.AddCount("dbms.rows.output", output.num_rows());
  telem.Attr("results", result.stats.results);
  if (guard != nullptr) {
    SSJOIN_RETURN_NOT_OK(guard->CheckBreaker(
        JoinPhase::kVerify, result.stats.candidates, result.stats.results));
    SSJOIN_RETURN_NOT_OK(guard->Checkpoint(JoinPhase::kVerify));
  }

  result.pairs = DecodePairs(output);
  result.output = std::move(output);
  return result;
}

}  // namespace ssjoin::relational
