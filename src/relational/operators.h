// Physical operators of the mini relational engine.
//
// Exactly the operator set the paper's query plans require (Figures 10/11
// and 16/17): equi hash-join, group-by with COUNT(*), DISTINCT projection,
// selection (filter), and projection. All operators are blocking
// (materialize their output), which matches how the intermediate tables
// (CandPair, CandPairIntersect) appear in the paper's implementation.

#pragma once

#include <functional>
#include <vector>

#include "relational/table.h"
#include "util/status.h"

namespace ssjoin::relational {

/// Hash equi-join of `left` and `right` on pairwise-equal key columns.
/// Output schema = Concat(left, right) with the given prefixes. An
/// optional `residual` predicate is applied to each joined row before
/// emission (e.g. the "S1.id < S2.id" condition of the CandPair query).
Result<Table> HashJoin(
    const Table& left, const Table& right,
    const std::vector<std::string>& left_keys,
    const std::vector<std::string>& right_keys,
    const std::string& left_prefix = "l.",
    const std::string& right_prefix = "r.",
    const std::function<bool(const Row&)>& residual = nullptr);

/// GROUP BY `group_columns` with COUNT(*); output schema is the group
/// columns followed by an int64 column named `count_name`.
Result<Table> GroupByCount(const Table& input,
                           const std::vector<std::string>& group_columns,
                           const std::string& count_name = "count");

/// Aggregate operations for GroupByAggregate.
enum class AggOp { kCount, kSum, kMin, kMax, kAvg };

struct Aggregate {
  AggOp op = AggOp::kCount;
  /// Input column (ignored for kCount).
  std::string column;
  /// Output column name.
  std::string output;
};

/// GROUP BY with arbitrary aggregates. Output schema: the group columns
/// followed by one column per aggregate (kCount -> int64; kSum/kMin/kMax
/// preserve the input column's type for int64/double inputs; kAvg ->
/// double). Aggregating a string column is only valid for kMin/kMax.
Result<Table> GroupByAggregate(const Table& input,
                               const std::vector<std::string>& group_columns,
                               const std::vector<Aggregate>& aggregates);

/// ORDER BY the given columns ascending (descending where the name is
/// prefixed with '-', e.g. "-count"). Stable.
Result<Table> OrderBy(const Table& input,
                      const std::vector<std::string>& columns);

/// LIMIT n.
Table Limit(const Table& input, size_t n);

/// SELECT DISTINCT `columns`.
Result<Table> Distinct(const Table& input,
                       const std::vector<std::string>& columns);

/// SELECT * WHERE predicate(row).
Table Filter(const Table& input,
             const std::function<bool(const Row&)>& predicate);

/// SELECT `columns`.
Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns);

}  // namespace ssjoin::relational
