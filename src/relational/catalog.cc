#include "relational/catalog.h"

namespace ssjoin::relational {

Status Catalog::Create(const std::string& name, Table table) {
  auto [it, inserted] = tables_.emplace(name, std::move(table));
  if (!inserted) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  return Status::OK();
}

void Catalog::CreateOrReplace(const std::string& name, Table table) {
  tables_[name] = std::move(table);
}

const Table* Catalog::Get(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Status Catalog::Drop(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return Status::OK();
}

}  // namespace ssjoin::relational
