// Value / type model of the mini relational engine.
//
// The paper implements its joins "over a regular DBMS using a small amount
// of application-level code" (SQL Server 2005; Figures 10/11 and 16/17).
// That substrate is unavailable, so relational/ provides a miniature
// in-memory engine with just the capabilities those query plans need:
// typed tables, equi hash-joins, group-by-count, distinct, filters and
// projections. Three value types suffice: 64-bit integers (ids, elements,
// hashed signatures, counts), doubles (thresholds), and strings (the raw
// input of the string-join plan).

#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace ssjoin::relational {

enum class ValueType { kInt64, kDouble, kString };

/// A single cell. Comparable and hashable; cross-type comparison is a
/// programming error caught by assertions in the operators.
using Value = std::variant<int64_t, double, std::string>;

ValueType TypeOf(const Value& v);

/// Renders a value for debugging / plan output.
std::string ToString(const Value& v);

/// FNV-style hash of a value (used by hash join / distinct / group by).
size_t HashValue(const Value& v);

}  // namespace ssjoin::relational
