#include "relational/table.h"

#include <algorithm>
#include <sstream>

namespace ssjoin::relational {

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Schema Schema::Concat(const Schema& left, const Schema& right,
                      const std::string& left_prefix,
                      const std::string& right_prefix) {
  std::vector<Column> columns;
  columns.reserve(left.num_columns() + right.num_columns());
  for (const Column& c : left.columns()) {
    columns.push_back(Column{left_prefix + c.name, c.type});
  }
  for (const Column& c : right.columns()) {
    columns.push_back(Column{right_prefix + c.name, c.type});
  }
  return Schema(std::move(columns));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) os << ", ";
    os << columns_[i].name;
  }
  os << ")";
  return os.str();
}

Status Table::Append(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (TypeOf(row[i]) != schema_.column(i).type) {
      return Status::InvalidArgument("type mismatch in column " +
                                     schema_.column(i).name);
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

void Table::SortBy(const std::vector<int>& columns) {
  for (int c : columns) SSJOIN_CHECK_BOUNDS(c, schema_.num_columns());
  std::sort(rows_.begin(), rows_.end(), [&](const Row& a, const Row& b) {
    for (int c : columns) {
      if (a[c] < b[c]) return true;
      if (b[c] < a[c]) return false;
    }
    return false;
  });
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << " rows=" << rows_.size() << "\n";
  for (size_t i = 0; i < std::min(max_rows, rows_.size()); ++i) {
    for (size_t c = 0; c < rows_[i].size(); ++c) {
      if (c > 0) os << " | ";
      os << relational::ToString(rows_[i][c]);
    }
    os << "\n";
  }
  if (rows_.size() > max_rows) os << "...\n";
  return os.str();
}

int64_t GetInt64(const Row& row, int column) {
  SSJOIN_CHECK_BOUNDS(column, row.size());
  SSJOIN_CHECK(std::holds_alternative<int64_t>(row[column]),
               "column {} holds {}, not INT64", column,
               relational::ToString(row[column]));
  return std::get<int64_t>(row[column]);
}

double GetDouble(const Row& row, int column) {
  SSJOIN_CHECK_BOUNDS(column, row.size());
  SSJOIN_CHECK(std::holds_alternative<double>(row[column]),
               "column {} holds {}, not DOUBLE", column,
               relational::ToString(row[column]));
  return std::get<double>(row[column]);
}

const std::string& GetString(const Row& row, int column) {
  SSJOIN_CHECK_BOUNDS(column, row.size());
  SSJOIN_CHECK(std::holds_alternative<std::string>(row[column]),
               "column {} holds {}, not STRING", column,
               relational::ToString(row[column]));
  return std::get<std::string>(row[column]);
}

}  // namespace ssjoin::relational
