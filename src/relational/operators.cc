#include "relational/operators.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace ssjoin::relational {

namespace {

// Resolves column names to indices; fails on unknown names.
Result<std::vector<int>> ResolveColumns(
    const Schema& schema, const std::vector<std::string>& names) {
  std::vector<int> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    int idx = schema.IndexOf(name);
    if (idx < 0) {
      return Status::NotFound("column '" + name + "' not in schema " +
                              schema.ToString());
    }
    out.push_back(idx);
  }
  return out;
}

// Hash of a key (subset of row cells).
size_t HashKey(const Row& row, const std::vector<int>& columns) {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (int c : columns) {
    SSJOIN_DCHECK_BOUNDS(c, row.size());
    h = h * 1099511628211ULL ^ HashValue(row[c]);
  }
  return h;
}

bool KeysEqual(const Row& a, const std::vector<int>& a_cols, const Row& b,
               const std::vector<int>& b_cols) {
  SSJOIN_DCHECK(a_cols.size() == b_cols.size(),
                "key arity mismatch: {} vs {}", a_cols.size(),
                b_cols.size());
  for (size_t i = 0; i < a_cols.size(); ++i) {
    if (!(a[a_cols[i]] == b[b_cols[i]])) return false;
  }
  return true;
}

}  // namespace

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<std::string>& left_keys,
                       const std::vector<std::string>& right_keys,
                       const std::string& left_prefix,
                       const std::string& right_prefix,
                       const std::function<bool(const Row&)>& residual) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return Status::InvalidArgument("join keys must be non-empty and paired");
  }
  SSJOIN_ASSIGN_OR_RETURN(std::vector<int> lcols,
                          ResolveColumns(left.schema(), left_keys));
  SSJOIN_ASSIGN_OR_RETURN(std::vector<int> rcols,
                          ResolveColumns(right.schema(), right_keys));

  Table output(
      Schema::Concat(left.schema(), right.schema(), left_prefix,
                     right_prefix));

  // Build on the smaller side for memory; probe with the other.
  const bool build_left = left.num_rows() <= right.num_rows();
  const Table& build = build_left ? left : right;
  const Table& probe = build_left ? right : left;
  const std::vector<int>& bcols = build_left ? lcols : rcols;
  const std::vector<int>& pcols = build_left ? rcols : lcols;

  std::unordered_multimap<size_t, size_t> table;  // key hash -> build row
  table.reserve(build.num_rows());
  for (size_t i = 0; i < build.num_rows(); ++i) {
    table.emplace(HashKey(build.row(i), bcols), i);
  }
  for (size_t j = 0; j < probe.num_rows(); ++j) {
    const Row& prow = probe.row(j);
    auto [lo, hi] = table.equal_range(HashKey(prow, pcols));
    for (auto it = lo; it != hi; ++it) {
      const Row& brow = build.row(it->second);
      if (!KeysEqual(brow, bcols, prow, pcols)) continue;
      const Row& lrow = build_left ? brow : prow;
      const Row& rrow = build_left ? prow : brow;
      Row joined;
      joined.reserve(lrow.size() + rrow.size());
      joined.insert(joined.end(), lrow.begin(), lrow.end());
      joined.insert(joined.end(), rrow.begin(), rrow.end());
      SSJOIN_DCHECK(joined.size() == output.schema().num_columns(),
                    "joined row arity {} != concatenated schema {}",
                    joined.size(), output.schema().num_columns());
      if (residual && !residual(joined)) continue;
      output.AppendUnchecked(std::move(joined));
    }
  }
  return output;
}

Result<Table> GroupByCount(const Table& input,
                           const std::vector<std::string>& group_columns,
                           const std::string& count_name) {
  SSJOIN_ASSIGN_OR_RETURN(std::vector<int> gcols,
                          ResolveColumns(input.schema(), group_columns));
  std::vector<Column> out_columns;
  for (int c : gcols) out_columns.push_back(input.schema().column(c));
  out_columns.push_back(Column{count_name, ValueType::kInt64});
  Table output((Schema(out_columns)));

  // Group rows via hash map from key hash to candidate output slots
  // (chained to handle hash collisions exactly).
  std::unordered_multimap<size_t, size_t> groups;  // hash -> output row idx
  for (size_t i = 0; i < input.num_rows(); ++i) {
    const Row& row = input.row(i);
    size_t h = HashKey(row, gcols);
    bool found = false;
    auto [lo, hi] = groups.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      Row& orow = const_cast<Row&>(output.row(it->second));
      bool equal = true;
      for (size_t g = 0; g < gcols.size(); ++g) {
        if (!(orow[g] == row[gcols[g]])) {
          equal = false;
          break;
        }
      }
      if (equal) {
        orow.back() = std::get<int64_t>(orow.back()) + 1;
        found = true;
        break;
      }
    }
    if (!found) {
      Row orow;
      orow.reserve(gcols.size() + 1);
      for (int c : gcols) orow.push_back(row[c]);
      orow.push_back(static_cast<int64_t>(1));
      output.AppendUnchecked(std::move(orow));
      groups.emplace(h, output.num_rows() - 1);
    }
  }
  return output;
}

namespace {

// Running aggregate state for one group x one aggregate.
struct AggState {
  int64_t count = 0;
  double sum = 0;
  std::optional<Value> min;
  std::optional<Value> max;
};

Result<ValueType> AggOutputType(const Table& input, const Aggregate& agg,
                                int column) {
  switch (agg.op) {
    case AggOp::kCount:
      return ValueType::kInt64;
    case AggOp::kAvg:
      return ValueType::kDouble;
    case AggOp::kSum: {
      ValueType t = input.schema().column(column).type;
      if (t == ValueType::kString) {
        return Status::InvalidArgument("SUM over string column '" +
                                       agg.column + "'");
      }
      return t;
    }
    case AggOp::kMin:
    case AggOp::kMax:
      return input.schema().column(column).type;
  }
  return Status::InvalidArgument("unknown aggregate op");
}

double NumericValue(const Value& v) {
  return std::holds_alternative<int64_t>(v)
             ? static_cast<double>(std::get<int64_t>(v))
             : std::get<double>(v);
}

}  // namespace

Result<Table> GroupByAggregate(
    const Table& input, const std::vector<std::string>& group_columns,
    const std::vector<Aggregate>& aggregates) {
  SSJOIN_ASSIGN_OR_RETURN(std::vector<int> gcols,
                          ResolveColumns(input.schema(), group_columns));
  std::vector<int> acols(aggregates.size(), -1);
  std::vector<Column> out_columns;
  for (int c : gcols) out_columns.push_back(input.schema().column(c));
  for (size_t a = 0; a < aggregates.size(); ++a) {
    const Aggregate& agg = aggregates[a];
    if (agg.op != AggOp::kCount) {
      SSJOIN_ASSIGN_OR_RETURN(std::vector<int> resolved,
                              ResolveColumns(input.schema(), {agg.column}));
      acols[a] = resolved[0];
    }
    SSJOIN_ASSIGN_OR_RETURN(ValueType type,
                            AggOutputType(input, agg, acols[a]));
    out_columns.push_back(Column{agg.output, type});
  }

  // Group index: hash -> group ordinal (chained for exact key equality).
  std::vector<Row> keys;
  std::vector<std::vector<AggState>> states;
  std::unordered_multimap<size_t, size_t> groups;
  for (size_t i = 0; i < input.num_rows(); ++i) {
    const Row& row = input.row(i);
    size_t h = HashKey(row, gcols);
    size_t group = SIZE_MAX;
    auto [lo, hi] = groups.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      bool equal = true;
      for (size_t g = 0; g < gcols.size(); ++g) {
        if (!(keys[it->second][g] == row[gcols[g]])) {
          equal = false;
          break;
        }
      }
      if (equal) {
        group = it->second;
        break;
      }
    }
    if (group == SIZE_MAX) {
      group = keys.size();
      Row key;
      for (int c : gcols) key.push_back(row[c]);
      keys.push_back(std::move(key));
      states.emplace_back(aggregates.size());
      groups.emplace(h, group);
    }
    for (size_t a = 0; a < aggregates.size(); ++a) {
      AggState& state = states[group][a];
      ++state.count;
      if (aggregates[a].op == AggOp::kCount) continue;
      const Value& v = row[acols[a]];
      if (aggregates[a].op == AggOp::kSum ||
          aggregates[a].op == AggOp::kAvg) {
        state.sum += NumericValue(v);
      }
      if (!state.min || v < *state.min) state.min = v;
      if (!state.max || *state.max < v) state.max = v;
    }
  }

  Table output((Schema(out_columns)));
  output.Reserve(keys.size());
  for (size_t group = 0; group < keys.size(); ++group) {
    Row row = keys[group];
    for (size_t a = 0; a < aggregates.size(); ++a) {
      const AggState& state = states[group][a];
      switch (aggregates[a].op) {
        case AggOp::kCount:
          row.push_back(state.count);
          break;
        case AggOp::kAvg:
          row.push_back(state.sum / static_cast<double>(state.count));
          break;
        case AggOp::kSum:
          if (input.schema().column(acols[a]).type == ValueType::kInt64) {
            row.push_back(static_cast<int64_t>(state.sum));
          } else {
            row.push_back(state.sum);
          }
          break;
        case AggOp::kMin:
          row.push_back(*state.min);
          break;
        case AggOp::kMax:
          row.push_back(*state.max);
          break;
      }
    }
    output.AppendUnchecked(std::move(row));
  }
  return output;
}

Result<Table> OrderBy(const Table& input,
                      const std::vector<std::string>& columns) {
  std::vector<int> cols;
  std::vector<bool> descending;
  for (const std::string& name : columns) {
    bool desc = !name.empty() && name[0] == '-';
    std::string bare = desc ? name.substr(1) : name;
    SSJOIN_ASSIGN_OR_RETURN(std::vector<int> resolved,
                            ResolveColumns(input.schema(), {bare}));
    cols.push_back(resolved[0]);
    descending.push_back(desc);
  }
  Table output(input.schema());
  output.Reserve(input.num_rows());
  std::vector<size_t> order(input.num_rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t c = 0; c < cols.size(); ++c) {
      const Value& va = input.row(a)[cols[c]];
      const Value& vb = input.row(b)[cols[c]];
      if (va < vb) return !descending[c];
      if (vb < va) return static_cast<bool>(descending[c]);
    }
    return false;
  });
  for (size_t i : order) output.AppendUnchecked(input.row(i));
  return output;
}

Table Limit(const Table& input, size_t n) {
  Table output(input.schema());
  size_t keep = std::min(n, input.num_rows());
  output.Reserve(keep);
  for (size_t i = 0; i < keep; ++i) output.AppendUnchecked(input.row(i));
  return output;
}

Result<Table> Distinct(const Table& input,
                       const std::vector<std::string>& columns) {
  SSJOIN_ASSIGN_OR_RETURN(std::vector<int> cols,
                          ResolveColumns(input.schema(), columns));
  std::vector<Column> out_columns;
  for (int c : cols) out_columns.push_back(input.schema().column(c));
  Table output((Schema(out_columns)));

  std::unordered_multimap<size_t, size_t> seen;
  for (size_t i = 0; i < input.num_rows(); ++i) {
    const Row& row = input.row(i);
    size_t h = HashKey(row, cols);
    bool duplicate = false;
    auto [lo, hi] = seen.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      const Row& orow = output.row(it->second);
      bool equal = true;
      for (size_t c = 0; c < cols.size(); ++c) {
        if (!(orow[c] == row[cols[c]])) {
          equal = false;
          break;
        }
      }
      if (equal) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      Row orow;
      orow.reserve(cols.size());
      for (int c : cols) orow.push_back(row[c]);
      output.AppendUnchecked(std::move(orow));
      seen.emplace(h, output.num_rows() - 1);
    }
  }
  return output;
}

Table Filter(const Table& input,
             const std::function<bool(const Row&)>& predicate) {
  Table output(input.schema());
  for (size_t i = 0; i < input.num_rows(); ++i) {
    if (predicate(input.row(i))) output.AppendUnchecked(input.row(i));
  }
  return output;
}

Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns) {
  SSJOIN_ASSIGN_OR_RETURN(std::vector<int> cols,
                          ResolveColumns(input.schema(), columns));
  std::vector<Column> out_columns;
  for (int c : cols) out_columns.push_back(input.schema().column(c));
  Table output((Schema(out_columns)));
  output.Reserve(input.num_rows());
  for (size_t i = 0; i < input.num_rows(); ++i) {
    Row orow;
    orow.reserve(cols.size());
    for (int c : cols) orow.push_back(input.row(i)[c]);
    output.AppendUnchecked(std::move(orow));
  }
  return output;
}

}  // namespace ssjoin::relational
