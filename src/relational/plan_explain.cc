#include "relational/plan_explain.h"

#include <cstdio>
#include <utility>

#include "obs/json_util.h"

namespace ssjoin::relational {

namespace {
using ssjoin::obs::json::AppendJsonString;
using ssjoin::obs::json::AppendUint;
}  // namespace

void PlanExplain::AddOp(std::string op, std::string detail,
                        uint64_t rows_in, uint64_t rows_out,
                        double seconds) {
  PlanOpExplain entry;
  entry.op = std::move(op);
  entry.detail = std::move(detail);
  entry.rows_in = rows_in;
  entry.rows_out = rows_out;
  entry.seconds = seconds;
  ops.push_back(std::move(entry));
}

std::string PlanExplain::Text() const {
  std::string out = "plan " + plan;
  if (!variant.empty()) out += " (" + variant + ")";
  out += "\n";
  // Execution order is leaf-to-root; the tree renders root-first with
  // each operator's input indented below it.
  for (size_t i = ops.size(); i-- > 0;) {
    const PlanOpExplain& op = ops[i];
    out.append(2 * (ops.size() - i), ' ');
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  rows_in=%llu rows_out=%llu",
                  static_cast<unsigned long long>(op.rows_in),
                  static_cast<unsigned long long>(op.rows_out));
    out += op.op + " [" + op.detail + "]" + buf;
    std::snprintf(buf, sizeof(buf), "  (%.3f ms, runtime)",
                  op.seconds * 1000.0);
    out += buf;
    out += "\n";
  }
  return out;
}

std::string PlanExplain::Jsonl() const {
  std::string out;
  out += "{\"type\":\"plan\",\"name\":";
  AppendJsonString(&out, plan);
  out += ",\"variant\":";
  AppendJsonString(&out, variant);
  out += ",\"ops\":";
  AppendUint(&out, ops.size());
  out += "}\n";
  for (size_t i = 0; i < ops.size(); ++i) {
    const PlanOpExplain& op = ops[i];
    out += "{\"type\":\"plan_op\",\"index\":";
    AppendUint(&out, i);
    out += ",\"op\":";
    AppendJsonString(&out, op.op);
    out += ",\"detail\":";
    AppendJsonString(&out, op.detail);
    out += ",\"rows_in\":";
    AppendUint(&out, op.rows_in);
    out += ",\"rows_out\":";
    AppendUint(&out, op.rows_out);
    out += "}\n";
  }
  return out;
}

}  // namespace ssjoin::relational
