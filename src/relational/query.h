// Fluent query builder over the relational operators.
//
// Composes the physical operators into readable pipelines with automatic
// Status short-circuiting — the shape the paper's Figure 11 / Figure 17
// queries take in sql_ssjoin.cc:
//
//   auto cand = Query::From(signature)
//                   .Join(signature, {"sign"}, {"sign"}, "s1.", "s2.",
//                         id1_less_than_id2)
//                   .SelectDistinct({"s1.id", "s2.id"})
//                   .Run();
//
// Execution is eager (each step materializes, like the paper's
// intermediate tables); a failed step poisons the rest of the chain.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "relational/operators.h"
#include "relational/table.h"
#include "util/status.h"

namespace ssjoin::relational {

class Query {
 public:
  /// Starts a pipeline from a materialized table (copied in; use
  /// std::move for large inputs).
  static Query From(Table table);

  Query Join(const Table& right, const std::vector<std::string>& left_keys,
             const std::vector<std::string>& right_keys,
             const std::string& left_prefix = "l.",
             const std::string& right_prefix = "r.",
             const std::function<bool(const Row&)>& residual = nullptr) &&;

  Query Where(const std::function<bool(const Row&)>& predicate) &&;

  Query Select(const std::vector<std::string>& columns) &&;

  Query SelectDistinct(const std::vector<std::string>& columns) &&;

  Query GroupByCount(const std::vector<std::string>& group_columns,
                     const std::string& count_name = "count") &&;

  Query GroupBy(const std::vector<std::string>& group_columns,
                const std::vector<Aggregate>& aggregates) &&;

  Query OrderBy(const std::vector<std::string>& columns) &&;

  Query Limit(size_t n) &&;

  /// Finishes the pipeline.
  Result<Table> Run() &&;

 private:
  explicit Query(Result<Table> state) : state_(std::move(state)) {}

  Result<Table> state_;
};

}  // namespace ssjoin::relational
