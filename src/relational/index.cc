#include "relational/index.h"

namespace ssjoin::relational {

Result<ClusteredIndex> ClusteredIndex::Build(const Table* table,
                                             const std::string& key_column) {
  if (table == nullptr) {
    return Status::InvalidArgument("ClusteredIndex: table is null");
  }
  int column = table->schema().IndexOf(key_column);
  if (column < 0) {
    return Status::NotFound("ClusteredIndex: no column '" + key_column +
                            "'");
  }
  if (table->schema().column(column).type != ValueType::kInt64) {
    return Status::InvalidArgument(
        "ClusteredIndex: key column must be int64");
  }
  for (size_t i = 1; i < table->num_rows(); ++i) {
    if (GetInt64(table->row(i), column) <
        GetInt64(table->row(i - 1), column)) {
      return Status::InvalidArgument(
          "ClusteredIndex: table not sorted on '" + key_column +
          "' (call SortBy first)");
    }
  }
  return ClusteredIndex(table, column);
}

std::pair<size_t, size_t> ClusteredIndex::EqualRange(int64_t key) const {
  // Binary search for the first row >= key.
  size_t lo = 0, hi = table_->num_rows();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (GetInt64(table_->row(mid), key_column_) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  size_t first = lo;
  hi = table_->num_rows();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (GetInt64(table_->row(mid), key_column_) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {first, lo};
}

}  // namespace ssjoin::relational
