// Tables and schemas for the mini relational engine.

#pragma once

#include <string>
#include <vector>

#include "util/check.h"
#include "relational/value.h"
#include "util/status.h"

namespace ssjoin::relational {

/// A column definition.
struct Column {
  std::string name;
  ValueType type;
};

/// An ordered list of columns.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Column> columns) : columns_(columns) {}
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column with `name`; -1 if absent.
  int IndexOf(const std::string& name) const;

  /// Concatenation of two schemas (join output), with `left_prefix` /
  /// `right_prefix` applied to disambiguate duplicate names.
  static Schema Concat(const Schema& left, const Schema& right,
                       const std::string& left_prefix,
                       const std::string& right_prefix);

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

using Row = std::vector<Value>;

/// \brief A row-set with a schema. Rows are append-only.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }

  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row; arity and column types are validated.
  Status Append(Row row);

  /// Appends without validation (hot paths in operators; callers
  /// guarantee shape).
  void AppendUnchecked(Row row) {
    SSJOIN_DCHECK(row.size() == schema_.num_columns(),
                  "row arity {} != schema arity {} {}", row.size(),
                  schema_.num_columns(), schema_.ToString());
    rows_.push_back(std::move(row));
  }

  void Reserve(size_t n) { rows_.reserve(n); }

  /// Sorts rows lexicographically by the given columns (the engine's
  /// "clustered index" emulation: sorted storage + range scans).
  void SortBy(const std::vector<int>& columns);

  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

/// Cell accessors with type assertions.
int64_t GetInt64(const Row& row, int column);
double GetDouble(const Row& row, int column);
const std::string& GetString(const Row& row, int column);

}  // namespace ssjoin::relational
