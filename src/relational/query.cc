#include "relational/query.h"

namespace ssjoin::relational {

Query Query::From(Table table) { return Query(std::move(table)); }

Query Query::Join(const Table& right,
                  const std::vector<std::string>& left_keys,
                  const std::vector<std::string>& right_keys,
                  const std::string& left_prefix,
                  const std::string& right_prefix,
                  const std::function<bool(const Row&)>& residual) && {
  if (!state_.ok()) return Query(std::move(state_));
  return Query(HashJoin(*state_, right, left_keys, right_keys, left_prefix,
                        right_prefix, residual));
}

Query Query::Where(const std::function<bool(const Row&)>& predicate) && {
  if (!state_.ok()) return Query(std::move(state_));
  return Query(Filter(*state_, predicate));
}

Query Query::Select(const std::vector<std::string>& columns) && {
  if (!state_.ok()) return Query(std::move(state_));
  return Query(Project(*state_, columns));
}

Query Query::SelectDistinct(const std::vector<std::string>& columns) && {
  if (!state_.ok()) return Query(std::move(state_));
  return Query(Distinct(*state_, columns));
}

Query Query::GroupByCount(const std::vector<std::string>& group_columns,
                          const std::string& count_name) && {
  if (!state_.ok()) return Query(std::move(state_));
  return Query(
      relational::GroupByCount(*state_, group_columns, count_name));
}

Query Query::GroupBy(const std::vector<std::string>& group_columns,
                     const std::vector<Aggregate>& aggregates) && {
  if (!state_.ok()) return Query(std::move(state_));
  return Query(GroupByAggregate(*state_, group_columns, aggregates));
}

Query Query::OrderBy(const std::vector<std::string>& columns) && {
  if (!state_.ok()) return Query(std::move(state_));
  return Query(relational::OrderBy(*state_, columns));
}

Query Query::Limit(size_t n) && {
  if (!state_.ok()) return Query(std::move(state_));
  return Query(relational::Limit(*state_, n));
}

Result<Table> Query::Run() && { return std::move(state_); }

}  // namespace ssjoin::relational
