// Clustered-index emulation for the mini relational engine.
//
// The paper's setup note (Section 8.1): "We built a clustered index over
// the input relation Set since it significantly improved the time to
// compute CandPairIntersect." In this engine a clustered index is sorted
// storage plus binary-search range scans; sql_ssjoin.cc offers an
// index-nested-loop CandPairIntersect plan built on it, alongside the
// hash-join plan.

#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "relational/table.h"
#include "util/status.h"

namespace ssjoin::relational {

/// \brief Equality range scans over a table sorted by an int64 key
/// column.
///
/// The index borrows the table (no copy); the table must outlive it and
/// must not be mutated while indexed.
class ClusteredIndex {
 public:
  /// Verifies that `table` is sorted ascending on `key_column` (fails
  /// with InvalidArgument otherwise — build the index after SortBy).
  static Result<ClusteredIndex> Build(const Table* table,
                                      const std::string& key_column);

  /// Row range [first, last) holding `key`; empty range if absent.
  std::pair<size_t, size_t> EqualRange(int64_t key) const;

  const Table& table() const { return *table_; }
  int key_column() const { return key_column_; }

 private:
  ClusteredIndex(const Table* table, int key_column)
      : table_(table), key_column_(key_column) {}

  const Table* table_;
  int key_column_;
};

}  // namespace ssjoin::relational
