// Named-table catalog for the mini relational engine.

#pragma once

#include <string>
#include <unordered_map>

#include "relational/table.h"
#include "util/status.h"

namespace ssjoin::relational {

/// \brief Owns tables by name, like a database schema.
class Catalog {
 public:
  /// Registers `table` under `name`; fails if the name is taken.
  Status Create(const std::string& name, Table table);

  /// Replaces or creates.
  void CreateOrReplace(const std::string& name, Table table);

  /// nullptr if absent.
  const Table* Get(const std::string& name) const;

  Status Drop(const std::string& name);

  size_t size() const { return tables_.size(); }

 private:
  std::unordered_map<std::string, Table> tables_;
};

}  // namespace ssjoin::relational
