// EXPLAIN for the DBMS-backed plans (DESIGN.md Section 9).
//
// The relational counterpart of obs/explain.h: every DbmsSelfJoin /
// DbmsStringEditSelfJoin fills a PlanExplain — one PlanOpExplain per
// executed plan operator, in execution order (leaf first), with stable
// rows-in/rows-out counters and runtime per-operator seconds.
//
// Stability split (obs/stability.h): operator names, details, and row
// counts are kStable — the plans are serial and deterministic, so
// Jsonl() is byte-identical across runs and thread counts. Seconds are
// kRuntime and appear only in the human Text() tree.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ssjoin::relational {

/// One executed plan operator.
struct PlanOpExplain {
  /// Operator kind ("SigGen", "HashJoin", "Distinct", "GroupByCount",
  /// "IndexIntersect", "Filter").
  std::string op;
  /// SQL-ish rendering of what it computed.
  std::string detail;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  /// Wall-clock seconds (runtime-only; excluded from Jsonl()).
  double seconds = 0;
};

/// The operator tree of one executed DBMS plan. Ops are stored in
/// execution order — a linear pipeline here, so the rendering shows the
/// last op as the root with its input as the subtree.
struct PlanExplain {
  /// "dbms_self" or "dbms_string_edit".
  std::string plan;
  /// Intersect-plan variant for dbms_self ("hash_join" /
  /// "clustered_index"); empty otherwise.
  std::string variant;
  std::vector<PlanOpExplain> ops;

  void AddOp(std::string op, std::string detail, uint64_t rows_in,
             uint64_t rows_out, double seconds);

  /// Human-readable operator tree, root (output) first, with per-op row
  /// counts and milliseconds (timings marked as runtime).
  std::string Text() const;

  /// Deterministic JSONL: one "plan" header line, then one "plan_op"
  /// line per operator in execution order. No timings — the stable
  /// subset only.
  std::string Jsonl() const;
};

}  // namespace ssjoin::relational
