// The paper's DBMS-backed SSJoin implementations (Figures 10/11, 16/17).
//
// The paper's experimental system pushes everything after signature
// generation into a regular DBMS: signatures land in a Signature(id, sign)
// relation, candidate pairs come from a self-join on sign, intersection
// sizes from a join with the base Set relation plus GROUP BY COUNT(*), and
// the final predicate check from a join with SetLen. This module expresses
// those exact query plans over the relational/ mini engine, demonstrating
// the paper's closing claim ("can be implemented on top of a regular DBMS
// with very little coding effort") and serving as a second, independent
// implementation that the tests compare against the in-memory driver.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/predicate.h"
#include "core/signature_scheme.h"
#include "core/ssjoin.h"
#include "data/collection.h"
#include "relational/catalog.h"
#include "relational/plan_explain.h"
#include "util/status.h"

namespace ssjoin::relational {

/// Result of a DBMS-plan join: the Output table, the decoded pairs,
/// driver-comparable stats, and the executed operator tree.
struct DbmsJoinResult {
  Table output;                  // Output(id1, id2)
  std::vector<SetPair> pairs;    // decoded + sorted
  JoinStats stats;
  /// EXPLAIN of the executed plan (relational/plan_explain.h): one row
  /// per operator with rows-in/rows-out (stable) and per-op timings
  /// (runtime). Always filled; a guard trip leaves the ops executed so
  /// far.
  PlanExplain explain;
};

/// Physical plan for the CandPairIntersect step (Figure 11's join of
/// CandPair with Set twice + GROUP BY COUNT):
///   kHashJoin        — hash equi-joins, as written in Figure 11;
///   kClusteredIndex  — index-nested-loop over the clustered index on
///                      Set(id), the optimization the paper's setup notes
///                      ("We built a clustered index over the input
///                      relation Set since it significantly improved the
///                      time to compute CandPairIntersect").
enum class IntersectPlan { kHashJoin, kClusteredIndex };

/// Figure 10/11: jaccard (or any count-predicate) SSJoin through the
/// relational plan: Set/SetLen/Signature → CandPair → CandPairIntersect →
/// Output. The predicate is evaluated from (len1, len2, isize), so any
/// Predicate whose Matches is count-determined works (jaccard, hamming,
/// overlap — not the weighted predicates).
///
/// `guard` (optional, not owned) attaches execution guardrails: the plan
/// checkpoints between its steps — materialized-table sizes are charged
/// against the memory budget and cancellation / deadline / breaker trips
/// surface as the Result's error Status (kCancelled, kDeadlineExceeded,
/// kResourceExhausted), mirroring the in-memory driver.
///
/// `tracer` / `metrics` (optional, not owned) attach observability with
/// the same contract as JoinOptions: a join → phase span skeleton with
/// per-plan-step row counts, and dbms.rows.* counters for the
/// materialized relations.
Result<DbmsJoinResult> DbmsSelfJoin(
    const SetCollection& input, const SignatureScheme& scheme,
    const Predicate& predicate,
    IntersectPlan plan = IntersectPlan::kHashJoin,
    ExecutionGuard* guard = nullptr, obs::Tracer* tracer = nullptr,
    obs::MetricsRegistry* metrics = nullptr);

/// Figure 16/17: edit-distance string join through the relational plan:
/// String/Signature → CandPair → edit-distance check in "application
/// code". `scheme` must be built over the strings' q-gram bags (q = gram
/// length used to build it). `guard` / `tracer` / `metrics` as in
/// DbmsSelfJoin.
Result<DbmsJoinResult> DbmsStringEditSelfJoin(
    const std::vector<std::string>& strings, uint32_t edit_threshold,
    uint32_t q, const SignatureScheme& scheme,
    ExecutionGuard* guard = nullptr, obs::Tracer* tracer = nullptr,
    obs::MetricsRegistry* metrics = nullptr);

}  // namespace ssjoin::relational
