#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <unordered_map>

#include "obs/json_util.h"

namespace ssjoin::obs {

namespace {

using json::AppendDouble;
using json::AppendEscaped;
using json::AppendInt;
using json::AppendJsonString;
using json::AppendUint;

void AppendAttrValue(std::string* out, const AttrValue& value) {
  switch (value.kind) {
    case AttrValue::Kind::kUint:
      AppendUint(out, value.u);
      break;
    case AttrValue::Kind::kDouble:
      AppendDouble(out, value.d);
      break;
    case AttrValue::Kind::kString:
      AppendJsonString(out, value.s);
      break;
  }
}

void AppendAttrs(std::string* out, const SpanRecord& span) {
  *out += "{";
  bool first = true;
  for (const auto& [key, value] : span.attrs) {
    if (!first) *out += ",";
    first = false;
    AppendJsonString(out, key);
    *out += ":";
    AppendAttrValue(out, value);
  }
  *out += "}";
}

void AppendEvents(std::string* out, const SpanRecord& span,
                  bool with_times) {
  *out += "[";
  for (size_t i = 0; i < span.events.size(); ++i) {
    const SpanEvent& event = span.events[i];
    if (i > 0) *out += ",";
    *out += "{\"name\":";
    AppendJsonString(out, event.name);
    *out += ",\"detail\":";
    AppendJsonString(out, event.detail);
    if (with_times) {
      *out += ",\"at_us\":";
      AppendInt(out, event.at_us);
    }
    *out += "}";
  }
  *out += "]";
}

}  // namespace

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (!out) return Status::IOError("cannot open " + path);
  size_t written = std::fwrite(content.data(), 1, content.size(), out);
  int close_failed = std::fclose(out);
  if (written != content.size() || close_failed != 0) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

std::string TraceJsonl(const Tracer& tracer) {
  std::vector<SpanRecord> spans = tracer.Snapshot();
  // Re-number over the stable subset so runtime spans (whose creation
  // order may interleave arbitrarily) cannot perturb the ids.
  std::unordered_map<SpanId, uint32_t> stable_id;
  uint32_t next = 1;
  for (const SpanRecord& span : spans) {
    if (span.stability == Stability::kStable) stable_id[span.id] = next++;
  }
  std::string out;
  for (const SpanRecord& span : spans) {
    if (span.stability != Stability::kStable) continue;
    auto parent = stable_id.find(span.parent);
    out += "{\"type\":\"span\",\"id\":";
    AppendUint(&out, stable_id[span.id]);
    out += ",\"parent\":";
    AppendUint(&out, parent == stable_id.end() ? 0 : parent->second);
    out += ",\"name\":";
    AppendJsonString(&out, span.name);
    out += ",\"attrs\":";
    AppendAttrs(&out, span);
    out += ",\"events\":";
    AppendEvents(&out, span, /*with_times=*/false);
    out += "}\n";
  }
  return out;
}

std::string MetricsJsonl(const MetricsRegistry& metrics) {
  std::string out;
  for (const MetricRecord& record : metrics.Snapshot()) {
    if (record.stability != Stability::kStable) continue;
    switch (record.kind) {
      case MetricKind::kCounter:
        out += "{\"type\":\"counter\",\"name\":";
        AppendJsonString(&out, record.name);
        out += ",\"value\":";
        AppendUint(&out, record.counter_value);
        break;
      case MetricKind::kGauge:
        out += "{\"type\":\"gauge\",\"name\":";
        AppendJsonString(&out, record.name);
        out += ",\"value\":";
        AppendDouble(&out, record.gauge_value);
        break;
      case MetricKind::kHistogram:
        out += "{\"type\":\"histogram\",\"name\":";
        AppendJsonString(&out, record.name);
        out += ",\"count\":";
        AppendUint(&out, record.histogram_count);
        out += ",\"sum\":";
        AppendUint(&out, record.histogram_sum);
        out += ",\"buckets\":[";
        for (size_t i = 0; i < record.histogram_buckets.size(); ++i) {
          if (i > 0) out += ",";
          out += "[";
          AppendUint(&out, record.histogram_buckets[i].first);
          out += ",";
          AppendUint(&out, record.histogram_buckets[i].second);
          out += "]";
        }
        out += "]";
        break;
    }
    out += "}\n";
  }
  return out;
}

std::string ChromeTraceJson(const Tracer& tracer) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : tracer.Snapshot()) {
    if (!first) out += ",";
    first = false;
    // Complete ("X") events; a still-open span renders with dur 0.
    int64_t dur = span.end_us >= 0 ? span.end_us - span.start_us : 0;
    out += "\n{\"name\":";
    AppendJsonString(&out, span.name);
    out += ",\"cat\":";
    AppendJsonString(&out, span.stability == Stability::kStable
                               ? "stable"
                               : "runtime");
    out += ",\"ph\":\"X\",\"pid\":0,\"tid\":";
    AppendUint(&out, span.lane);
    out += ",\"ts\":";
    AppendInt(&out, span.start_us);
    out += ",\"dur\":";
    AppendInt(&out, dur);
    out += ",\"args\":";
    AppendAttrs(&out, span);
    out += "}";
    for (const SpanEvent& event : span.events) {
      out += ",\n{\"name\":";
      AppendJsonString(&out, event.name);
      out += ",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,"
             "\"tid\":";
      AppendUint(&out, span.lane);
      out += ",\"ts\":";
      AppendInt(&out, event.at_us);
      out += ",\"args\":{\"detail\":";
      AppendJsonString(&out, event.detail);
      out += "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

std::string RunReportText(const Tracer* tracer,
                          const MetricsRegistry* metrics) {
  std::string out;
  if (tracer != nullptr) {
    std::vector<SpanRecord> spans = tracer->Snapshot();
    std::unordered_map<SpanId, uint32_t> depth;
    out += "spans:\n";
    for (const SpanRecord& span : spans) {
      uint32_t d =
          span.parent == kNoSpan ? 0 : depth[span.parent] + 1;
      depth[span.id] = d;
      out += "  ";
      out.append(2 * d, ' ');
      out += span.name;
      char buf[64];
      if (span.end_us >= 0) {
        std::snprintf(buf, sizeof(buf), "  %.3f ms",
                      (span.end_us - span.start_us) / 1000.0);
        out += buf;
      } else {
        out += "  (open)";
      }
      if (span.stability == Stability::kRuntime) out += "  [runtime]";
      for (const auto& [key, value] : span.attrs) {
        out += "  " + key + "=";
        AppendAttrValue(&out, value);
      }
      out += "\n";
      for (const SpanEvent& event : span.events) {
        out += "  ";
        out.append(2 * d + 2, ' ');
        out += "! " + event.name;
        if (!event.detail.empty()) out += ": " + event.detail;
        out += "\n";
      }
    }
  }
  if (metrics != nullptr) {
    out += "metrics:\n";
    for (const MetricRecord& record : metrics->Snapshot()) {
      out += "  " + record.name + " = ";
      switch (record.kind) {
        case MetricKind::kCounter:
          AppendUint(&out, record.counter_value);
          break;
        case MetricKind::kGauge:
          AppendDouble(&out, record.gauge_value);
          break;
        case MetricKind::kHistogram: {
          char buf[96];
          std::snprintf(buf, sizeof(buf),
                        "count=%" PRIu64 " sum=%" PRIu64 " mean=%.1f",
                        record.histogram_count, record.histogram_sum,
                        record.histogram_count > 0
                            ? static_cast<double>(record.histogram_sum) /
                                  static_cast<double>(
                                      record.histogram_count)
                            : 0.0);
          out += buf;
          break;
        }
      }
      if (record.stability == Stability::kRuntime) out += "  [runtime]";
      out += "\n";
    }
  }
  return out;
}

Status WriteTraceJsonl(const Tracer& tracer, const std::string& path) {
  return WriteTextFile(path, TraceJsonl(tracer));
}

Status WriteMetricsJsonl(const MetricsRegistry& metrics,
                         const std::string& path) {
  return WriteTextFile(path, MetricsJsonl(metrics));
}

Status WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  return WriteTextFile(path, ChromeTraceJson(tracer));
}

Status WriteJsonlReport(const Tracer* tracer,
                        const MetricsRegistry* metrics,
                        const std::string& path) {
  std::string content;
  if (tracer != nullptr) content += TraceJsonl(*tracer);
  if (metrics != nullptr) content += MetricsJsonl(*metrics);
  return WriteTextFile(path, content);
}

Status WriteTraceAuto(const Tracer& tracer, const std::string& path) {
  constexpr std::string_view kJsonl = ".jsonl";
  if (path.size() >= kJsonl.size() &&
      path.compare(path.size() - kJsonl.size(), kJsonl.size(), kJsonl) ==
          0) {
    return WriteTraceJsonl(tracer, path);
  }
  return WriteChromeTrace(tracer, path);
}

}  // namespace ssjoin::obs
