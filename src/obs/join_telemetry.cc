#include "obs/join_telemetry.h"

namespace ssjoin::obs {

JoinTelemetry::JoinTelemetry(Tracer* tracer, MetricsRegistry* metrics,
                             std::string_view root_name)
    : tracer_(tracer), metrics_(metrics) {
  if (tracer_ != nullptr) {
    root_ = tracer_->StartSpan(root_name, kNoSpan, Stability::kStable);
  }
}

JoinTelemetry::~JoinTelemetry() {
  if (tracer_ != nullptr && root_ != kNoSpan) tracer_->EndSpan(root_);
}

JoinTelemetry::PhaseScope::~PhaseScope() {
  *seconds_ += watch_.ElapsedSeconds();
  if (span_ != kNoSpan) telemetry_->tracer_->EndSpan(span_);
}

JoinTelemetry::PhaseScope JoinTelemetry::Phase(std::string_view name,
                                               double* seconds) {
  SpanId span = kNoSpan;
  if (tracer_ != nullptr) {
    span = tracer_->StartSpan(name, root_, Stability::kStable);
    phase_span_ = span;
  }
  return PhaseScope(this, seconds, span);
}

JoinTelemetry::PhaseScope JoinTelemetry::Time(double* seconds) {
  return PhaseScope(this, seconds, kNoSpan);
}

void JoinTelemetry::PhaseBegin(std::string_view name, double* seconds) {
  manual_seconds_ = seconds;
  manual_span_ = kNoSpan;
  if (tracer_ != nullptr && !name.empty()) {
    manual_span_ = tracer_->StartSpan(name, root_, Stability::kStable);
    phase_span_ = manual_span_;
  }
  manual_watch_.Restart();
}

void JoinTelemetry::PhaseEnd() {
  if (manual_seconds_ == nullptr) return;
  *manual_seconds_ += manual_watch_.ElapsedSeconds();
  if (manual_span_ != kNoSpan) tracer_->EndSpan(manual_span_);
  manual_span_ = kNoSpan;
  manual_seconds_ = nullptr;
}

void JoinTelemetry::PhaseAttr(std::string_view key, uint64_t value) {
  if (tracer_ != nullptr && phase_span_ != kNoSpan) {
    tracer_->SetAttr(phase_span_, key, value);
  }
}

JoinTelemetry::SampleScope::~SampleScope() {
  if (latency_ != nullptr) {
    latency_->Record(static_cast<uint64_t>(watch_.ElapsedMicros()));
  }
  if (span_ != kNoSpan) telemetry_->tracer_->EndSpan(span_);
}

JoinTelemetry::SampleScope JoinTelemetry::Sample(std::string_view name,
                                                 Histogram* latency,
                                                 uint32_t lane) {
  SpanId span = kNoSpan;
  if (tracer_ != nullptr) {
    SpanId parent = phase_span_ != kNoSpan ? phase_span_ : root_;
    span = tracer_->StartSpan(name, parent, Stability::kRuntime, lane);
  }
  return SampleScope(this, latency, span);
}

void JoinTelemetry::Event(std::string_view name, std::string_view detail) {
  if (tracer_ != nullptr && root_ != kNoSpan) {
    tracer_->AddEvent(root_, name, detail);
  }
}

void JoinTelemetry::Attr(std::string_view key, uint64_t value) {
  if (tracer_ != nullptr && root_ != kNoSpan) {
    tracer_->SetAttr(root_, key, value);
  }
}

void JoinTelemetry::Attr(std::string_view key, double value) {
  if (tracer_ != nullptr && root_ != kNoSpan) {
    tracer_->SetAttr(root_, key, value);
  }
}

void JoinTelemetry::Attr(std::string_view key, std::string_view value) {
  if (tracer_ != nullptr && root_ != kNoSpan) {
    tracer_->SetAttr(root_, key, value);
  }
}

void JoinTelemetry::AddCount(std::string_view name, uint64_t delta,
                             Stability stability) {
  if (metrics_ != nullptr) metrics_->counter(name, stability).Add(delta);
}

void JoinTelemetry::SetGauge(std::string_view name, double value,
                             Stability stability) {
  if (metrics_ != nullptr) metrics_->gauge(name, stability).Set(value);
}

}  // namespace ssjoin::obs
