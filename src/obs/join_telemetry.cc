#include "obs/join_telemetry.h"

#include <algorithm>
#include <chrono>
#include <string>

namespace ssjoin::obs {

JoinTelemetry::JoinTelemetry(Tracer* tracer, MetricsRegistry* metrics,
                             std::string_view root_name)
    : tracer_(tracer), metrics_(metrics) {
  if (tracer_ != nullptr) {
    root_ = tracer_->StartSpan(root_name, kNoSpan, Stability::kStable);
  }
}

JoinTelemetry::~JoinTelemetry() {
  if (tracer_ != nullptr && root_ != kNoSpan) tracer_->EndSpan(root_);
}

JoinTelemetry::PhaseScope::~PhaseScope() {
  *seconds_ += watch_.ElapsedSeconds();
  if (span_ != kNoSpan) telemetry_->tracer_->EndSpan(span_);
}

JoinTelemetry::PhaseScope JoinTelemetry::Phase(std::string_view name,
                                               double* seconds) {
  SpanId span = kNoSpan;
  if (tracer_ != nullptr) {
    span = tracer_->StartSpan(name, root_, Stability::kStable);
    phase_span_ = span;
  }
  return PhaseScope(this, seconds, span);
}

JoinTelemetry::PhaseScope JoinTelemetry::Time(double* seconds) {
  return PhaseScope(this, seconds, kNoSpan);
}

void JoinTelemetry::PhaseBegin(std::string_view name, double* seconds) {
  manual_seconds_ = seconds;
  manual_span_ = kNoSpan;
  if (tracer_ != nullptr && !name.empty()) {
    manual_span_ = tracer_->StartSpan(name, root_, Stability::kStable);
    phase_span_ = manual_span_;
  }
  manual_watch_.Restart();
}

void JoinTelemetry::PhaseEnd() {
  if (manual_seconds_ == nullptr) return;
  *manual_seconds_ += manual_watch_.ElapsedSeconds();
  if (manual_span_ != kNoSpan) tracer_->EndSpan(manual_span_);
  manual_span_ = kNoSpan;
  manual_seconds_ = nullptr;
}

void JoinTelemetry::PhaseAttr(std::string_view key, uint64_t value) {
  if (tracer_ != nullptr && phase_span_ != kNoSpan) {
    tracer_->SetAttr(phase_span_, key, value);
  }
}

JoinTelemetry::SampleScope::~SampleScope() {
  if (latency_ != nullptr) {
    latency_->Record(static_cast<uint64_t>(watch_.ElapsedMicros()));
  }
  if (span_ != kNoSpan) telemetry_->tracer_->EndSpan(span_);
}

JoinTelemetry::SampleScope JoinTelemetry::Sample(std::string_view name,
                                                 Histogram* latency,
                                                 uint32_t lane) {
  SpanId span = kNoSpan;
  if (tracer_ != nullptr) {
    SpanId parent = phase_span_ != kNoSpan ? phase_span_ : root_;
    span = tracer_->StartSpan(name, parent, Stability::kRuntime, lane);
  }
  return SampleScope(this, latency, span);
}

void JoinTelemetry::Event(std::string_view name, std::string_view detail) {
  if (tracer_ != nullptr && root_ != kNoSpan) {
    tracer_->AddEvent(root_, name, detail);
  }
}

void JoinTelemetry::Attr(std::string_view key, uint64_t value) {
  if (tracer_ != nullptr && root_ != kNoSpan) {
    tracer_->SetAttr(root_, key, value);
  }
}

void JoinTelemetry::Attr(std::string_view key, double value) {
  if (tracer_ != nullptr && root_ != kNoSpan) {
    tracer_->SetAttr(root_, key, value);
  }
}

void JoinTelemetry::Attr(std::string_view key, std::string_view value) {
  if (tracer_ != nullptr && root_ != kNoSpan) {
    tracer_->SetAttr(root_, key, value);
  }
}

void JoinTelemetry::AddCount(std::string_view name, uint64_t delta,
                             Stability stability) {
  if (metrics_ != nullptr) metrics_->counter(name, stability).Add(delta);
}

void JoinTelemetry::SetGauge(std::string_view name, double value,
                             Stability stability) {
  if (metrics_ != nullptr) metrics_->gauge(name, stability).Set(value);
}

void OpInstrument::Bind(JoinTelemetry* telemetry, std::string_view tag,
                        uint32_t lane) {
  if (telemetry == nullptr || telemetry->metrics() == nullptr ||
      tag.empty()) {
    return;
  }
  MetricsRegistry* metrics = telemetry->metrics();
  std::string base(names::kPipelinePrefix);
  base += tag;
  // Row totals are functions of the input and plan — stable. Batch
  // granularity and self-time vary with thread count and the wall
  // clock — runtime (see obs/stability.h).
  batches_ = &metrics->counter(base + std::string(names::kPipelineSuffixBatches),
                               Stability::kRuntime);
  rows_in_ = &metrics->counter(base + std::string(names::kPipelineSuffixRowsIn),
                               Stability::kStable);
  rows_out_ =
      &metrics->counter(base + std::string(names::kPipelineSuffixRowsOut),
                        Stability::kStable);
  self_ns_ = &metrics->counter(base + std::string(names::kPipelineSuffixNs),
                               Stability::kRuntime);
  inclusive_ns_ = 0;
  published_rows_in_ = 0;
  published_rows_out_ = 0;
  tracer_ = telemetry->tracer();
  if (tracer_ != nullptr) {
    span_ = tracer_->StartSpan(tag, telemetry->root(), Stability::kRuntime,
                               lane);
  }
}

int64_t OpInstrument::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void OpInstrument::RecordPull(int64_t start_ns, uint64_t nested_ns,
                              bool produced, uint64_t rows_in,
                              uint64_t rows_out) {
  const uint64_t elapsed =
      static_cast<uint64_t>(std::max<int64_t>(0, NowNs() - start_ns));
  inclusive_ns_ += elapsed;
  self_ns_->Add(elapsed >= nested_ns ? elapsed - nested_ns : 0);
  if (produced) batches_->Add();
  if (rows_in > published_rows_in_) {
    rows_in_->Add(rows_in - published_rows_in_);
    published_rows_in_ = rows_in;
  }
  if (rows_out > published_rows_out_) {
    rows_out_->Add(rows_out - published_rows_out_);
    published_rows_out_ = rows_out;
  }
}

void OpInstrument::FinishCounts(uint64_t rows_in, uint64_t rows_out) {
  if (!enabled()) return;
  if (rows_in > published_rows_in_) {
    rows_in_->Add(rows_in - published_rows_in_);
    published_rows_in_ = rows_in;
  }
  if (rows_out > published_rows_out_) {
    rows_out_->Add(rows_out - published_rows_out_);
    published_rows_out_ = rows_out;
  }
  if (tracer_ != nullptr && span_ != kNoSpan) {
    tracer_->EndSpan(span_);
    span_ = kNoSpan;
  }
}

}  // namespace ssjoin::obs
