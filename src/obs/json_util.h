// Minimal JSON append helpers shared by the deterministic renderers
// (obs/export.cc, obs/explain.cc, relational plan explain). Not a JSON
// library: just escaping and the repo's canonical number formatting —
// %.17g for doubles, which round-trips exactly so equal values always
// render to equal bytes (the determinism contract cares only about
// that).

#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace ssjoin::obs::json {

inline void AppendEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

inline void AppendJsonString(std::string* out, std::string_view text) {
  *out += '"';
  AppendEscaped(out, text);
  *out += '"';
}

inline void AppendUint(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

inline void AppendInt(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

inline void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

inline void AppendBool(std::string* out, bool v) {
  *out += v ? "true" : "false";
}

}  // namespace ssjoin::obs::json
