// EXPLAIN layer: plan introspection and estimate-vs-actual drift
// accounting (DESIGN.md Section 9).
//
// The paper's practical claim is that PartEnum/WtEnum win only when
// (n1, n2)/TH are tuned right, which is why Section 3.2 builds the
// F2-based parameter advisor — yet a prediction nobody checks is just a
// guess. ExplainReport closes the loop for one Join(JoinRequest)
// invocation (or an accumulated sequence of them):
//
//   * the chosen driver and parameters,
//   * the advisor's full search table (every candidate setting it
//     evaluated, with sample statistics, extrapolated signature /
//     collision counts, and the estimated F2 that ranked it), and
//   * the matching actuals from the run, with a drift ratio
//     (predicted / actual) per quantity.
//
// Determinism contract: everything ExplainJsonl() exports is kStable —
// derived from JoinStats and the advisor's deterministic sampled
// search, so the bytes are identical for every thread count and every
// run on the same input. Wall-clock seconds and histogram quantiles
// appear only in the human ExplainText() rendering.
//
// Null-sink contract (same as obs/join_telemetry.h): the drivers and
// the advisor record through the null-safe Record* seams below; a null
// report costs one pointer compare per call — no allocation, no clock
// read. Enforced by tests/obs/null_sink_alloc_test.cc.
//
// This header must stay free of src/core includes: core depends on obs,
// never the reverse. The advisor trace therefore speaks in plain labels
// and doubles, not PartEnumParams.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ssjoin::obs {

class MetricsRegistry;

/// One candidate setting the parameter advisor evaluated. `label` is the
/// advisor's deterministic rendering of the setting ("n1=2,n2=6" /
/// "g=2,l=16" / "th=0.25").
struct AdvisorCandidate {
  std::string label;
  /// Theorem-2 signatures per set for this setting (0 when the scheme
  /// has no closed form, e.g. WtEnum).
  uint64_t signatures_per_set = 0;
  /// Sample statistics: total deduplicated signatures S and pairwise
  /// collision count C over the sampled sets (C is a double because the
  /// AMS route estimates it).
  uint64_t sample_signatures = 0;
  double sample_collisions = 0;
  /// Extrapolations to the target input (self-join, both sides):
  /// 2 * S * scale signatures and C * scale^2 collisions, with
  /// scale = target_input_size / sample_size.
  double predicted_signatures = 0;
  double predicted_collisions = 0;
  /// The Section 3.2 estimate that ranked the candidate:
  /// predicted_signatures + predicted_collisions.
  double predicted_f2 = 0;
  /// True for the setting Choose*() returned.
  bool chosen = false;
};

/// The advisor's full search table for one Choose*/Evaluate* call
/// sequence. Attach one to AdvisorOptions::trace to capture it; repeated
/// searches append their candidates.
struct AdvisorTrace {
  /// "partenum", "lsh", or "wtenum" (the last search recorded).
  std::string method;
  /// Sets actually sampled (after clamping to the input size).
  uint64_t sample_size = 0;
  /// Sets the estimates were extrapolated to.
  uint64_t target_input_size = 0;
  /// True when collision counts came from the AMS sketch.
  bool used_ams_sketch = false;
  std::vector<AdvisorCandidate> candidates;

  /// The first candidate marked chosen (nullptr when none is).
  const AdvisorCandidate* Chosen() const;
};

/// One predicted-vs-actual quantity. Either side may be missing: the
/// advisor predicts signature-level quantities only, and a run records
/// actuals for quantities nothing predicted (results, false positives)
/// — those still render, without a ratio.
struct DriftEntry {
  std::string name;
  double predicted = 0;
  double actual = 0;
  bool has_predicted = false;
  bool has_actual = false;

  /// predicted / actual. 1.0 when both are zero (a correct prediction
  /// of nothing), +infinity when the actual is zero but the prediction
  /// was not. Meaningless (0) unless both sides are present.
  double Ratio() const;
};

/// One operator of the executed pipeline plan, recorded by the operator
/// base class when it closes (src/core/pipeline/operator.h). `rows_in` /
/// `rows_out` are the deterministic row counts that flowed through the
/// operator (signatures, candidates, pairs — never batch counts, which
/// would vary with scheduling).
struct PlanOp {
  std::string op;      // operator name, e.g. "SigGen", "Verify"
  std::string detail;  // variant note, e.g. "sorted" / "deferred bitmap"
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
};

/// The assembled report. Plain data: copyable, no sinks, no locking —
/// attach one ExplainReport per join sequence from one thread.
struct ExplainReport {
  /// ExecutionModeName() of the (last) executed join.
  std::string mode;
  /// Stable key/value parameters (gamma, k, n1, ... — registered keys in
  /// obs/stability.h). Insertion-ordered; SetParam replaces an existing
  /// key in place.
  std::vector<std::pair<std::string, std::string>> params;
  AdvisorTrace advisor;
  /// The executed operator chain, source first. Replaced (not appended)
  /// by each join so an accumulated report shows the last plan; empty
  /// when the join ran without an explain report attached mid-plan.
  std::vector<PlanOp> plan;
  /// Drift table, in first-recorded order.
  std::vector<DriftEntry> drift;
  /// TripReasonName() of the guard trip that stopped the (last) join;
  /// empty for clean runs.
  std::string trip;
  /// Joins accumulated into this report.
  uint64_t joins = 0;

  // Runtime-only accounting (human rendering, never in ExplainJsonl).
  double siggen_seconds = 0;
  double candpair_seconds = 0;
  double postfilter_seconds = 0;

  void SetParam(std::string_view key, std::string_view value);
  /// Adds `value` to the predicted (resp. actual) side of `name`,
  /// creating the entry on first use. Accumulation lets a multi-join
  /// sequence (e.g. the advisor retry path) report totals.
  void Predict(std::string_view name, double value);
  void Actual(std::string_view name, double value);
  DriftEntry* Find(std::string_view name);
  const DriftEntry* Find(std::string_view name) const;
};

/// Null-safe seams for instrumented code: one pointer compare when no
/// report is attached (the null-sink contract).
inline void RecordParam(ExplainReport* report, std::string_view key,
                        std::string_view value) {
  if (report != nullptr) report->SetParam(key, value);
}
inline void RecordPrediction(ExplainReport* report, std::string_view name,
                             double value) {
  if (report != nullptr) report->Predict(name, value);
}
inline void RecordActual(ExplainReport* report, std::string_view name,
                         double value) {
  if (report != nullptr) report->Actual(name, value);
}

/// Copies `trace` into report->advisor (appending candidates when
/// several searches ran) and turns its chosen candidate into
/// join.signatures / join.signature_collisions / join.f2 predictions.
/// Null-safe in `report`.
void AttachAdvisorTrace(ExplainReport* report, const AdvisorTrace& trace);

/// Deterministic JSONL rendering: one header line, then one line per
/// param / advisor candidate / drift entry. kStable data only — no
/// seconds, no thread counts; non-finite ratios are omitted rather than
/// emitted (they are not valid JSON).
std::string ExplainJsonl(const ExplainReport& report);

/// Human rendering: parameters, the advisor search table with the chosen
/// row marked, the drift table, then a runtime section (phase seconds
/// and, when `metrics` is given, p50/p95/p99 of the per-shard/chunk
/// latency histograms via HistogramQuantile).
std::string ExplainText(const ExplainReport& report,
                        const MetricsRegistry* metrics = nullptr);

Status WriteExplainJsonl(const ExplainReport& report,
                         const std::string& path);

}  // namespace ssjoin::obs
