#include "obs/explain.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/export.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/stability.h"

namespace ssjoin::obs {

namespace {

using json::AppendBool;
using json::AppendDouble;
using json::AppendJsonString;
using json::AppendUint;

void AppendKeyString(std::string* out, std::string_view key,
                     std::string_view value) {
  *out += ",";
  AppendJsonString(out, key);
  *out += ":";
  AppendJsonString(out, value);
}

void AppendKeyUint(std::string* out, std::string_view key, uint64_t value) {
  *out += ",";
  AppendJsonString(out, key);
  *out += ":";
  AppendUint(out, value);
}

void AppendKeyDouble(std::string* out, std::string_view key, double value) {
  *out += ",";
  AppendJsonString(out, key);
  *out += ":";
  AppendDouble(out, value);
}

void AppendKeyBool(std::string* out, std::string_view key, bool value) {
  *out += ",";
  AppendJsonString(out, key);
  *out += ":";
  AppendBool(out, value);
}

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const AdvisorCandidate* AdvisorTrace::Chosen() const {
  for (const AdvisorCandidate& candidate : candidates) {
    if (candidate.chosen) return &candidate;
  }
  return nullptr;
}

double DriftEntry::Ratio() const {
  if (!has_predicted || !has_actual) return 0;
  if (actual == 0) {
    return predicted == 0 ? 1.0
                          : std::numeric_limits<double>::infinity();
  }
  return predicted / actual;
}

void ExplainReport::SetParam(std::string_view key, std::string_view value) {
  for (auto& [k, v] : params) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  params.emplace_back(std::string(key), std::string(value));
}

DriftEntry* ExplainReport::Find(std::string_view name) {
  for (DriftEntry& entry : drift) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

const DriftEntry* ExplainReport::Find(std::string_view name) const {
  for (const DriftEntry& entry : drift) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

void ExplainReport::Predict(std::string_view name, double value) {
  DriftEntry* entry = Find(name);
  if (entry == nullptr) {
    drift.emplace_back();
    entry = &drift.back();
    entry->name = std::string(name);
  }
  entry->predicted += value;
  entry->has_predicted = true;
}

void ExplainReport::Actual(std::string_view name, double value) {
  DriftEntry* entry = Find(name);
  if (entry == nullptr) {
    drift.emplace_back();
    entry = &drift.back();
    entry->name = std::string(name);
  }
  entry->actual += value;
  entry->has_actual = true;
}

void AttachAdvisorTrace(ExplainReport* report, const AdvisorTrace& trace) {
  if (report == nullptr) return;
  AdvisorTrace& dest = report->advisor;
  dest.method = trace.method;
  dest.sample_size = trace.sample_size;
  dest.target_input_size = trace.target_input_size;
  dest.used_ams_sketch = trace.used_ams_sketch;
  dest.candidates.insert(dest.candidates.end(), trace.candidates.begin(),
                         trace.candidates.end());
  const AdvisorCandidate* chosen = trace.Chosen();
  if (chosen != nullptr) {
    report->Predict(names::kJoinSignatures, chosen->predicted_signatures);
    report->Predict(names::kJoinSignatureCollisions,
                    chosen->predicted_collisions);
    report->Predict(names::kJoinF2, chosen->predicted_f2);
  }
}

std::string ExplainJsonl(const ExplainReport& report) {
  std::string out;
  out += "{\"type\":\"explain\",\"mode\":";
  AppendJsonString(&out, report.mode);
  AppendKeyUint(&out, "joins", report.joins);
  if (!report.trip.empty()) AppendKeyString(&out, "trip", report.trip);
  out += "}\n";
  for (const auto& [key, value] : report.params) {
    out += "{\"type\":\"param\",\"key\":";
    AppendJsonString(&out, key);
    AppendKeyString(&out, "value", value);
    out += "}\n";
  }
  for (const PlanOp& op : report.plan) {
    out += "{\"type\":\"plan_op\",\"op\":";
    AppendJsonString(&out, op.op);
    if (!op.detail.empty()) AppendKeyString(&out, "detail", op.detail);
    AppendKeyUint(&out, "rows_in", op.rows_in);
    AppendKeyUint(&out, "rows_out", op.rows_out);
    out += "}\n";
  }
  const AdvisorTrace& advisor = report.advisor;
  if (!advisor.method.empty() || !advisor.candidates.empty()) {
    out += "{\"type\":\"advisor\",\"method\":";
    AppendJsonString(&out, advisor.method);
    AppendKeyUint(&out, "sample_size", advisor.sample_size);
    AppendKeyUint(&out, "target_input_size", advisor.target_input_size);
    AppendKeyBool(&out, "ams", advisor.used_ams_sketch);
    out += "}\n";
  }
  for (const AdvisorCandidate& candidate : advisor.candidates) {
    out += "{\"type\":\"advisor_candidate\",\"label\":";
    AppendJsonString(&out, candidate.label);
    AppendKeyUint(&out, "signatures_per_set", candidate.signatures_per_set);
    AppendKeyUint(&out, "sample_signatures", candidate.sample_signatures);
    AppendKeyDouble(&out, "sample_collisions", candidate.sample_collisions);
    AppendKeyDouble(&out, "predicted_signatures",
                    candidate.predicted_signatures);
    AppendKeyDouble(&out, "predicted_collisions",
                    candidate.predicted_collisions);
    AppendKeyDouble(&out, "predicted_f2", candidate.predicted_f2);
    AppendKeyBool(&out, "chosen", candidate.chosen);
    out += "}\n";
  }
  for (const DriftEntry& entry : report.drift) {
    out += "{\"type\":\"drift\",\"name\":";
    AppendJsonString(&out, entry.name);
    if (entry.has_predicted) {
      AppendKeyDouble(&out, "predicted", entry.predicted);
    }
    if (entry.has_actual) AppendKeyDouble(&out, "actual", entry.actual);
    // Infinity is not valid JSON; an absent ratio marks a zero actual
    // (or a one-sided entry), which readers must treat as "no ratio".
    double ratio = entry.Ratio();
    if (entry.has_predicted && entry.has_actual && std::isfinite(ratio)) {
      AppendKeyDouble(&out, "ratio", ratio);
    }
    out += "}\n";
  }
  return out;
}

std::string ExplainText(const ExplainReport& report,
                        const MetricsRegistry* metrics) {
  std::string out;
  char buf[160];
  out += "EXPLAIN join (mode=" +
         (report.mode.empty() ? std::string("?") : report.mode) +
         ", joins=" + std::to_string(report.joins) + ")\n";
  if (!report.trip.empty()) {
    out += "  GUARD TRIP: " + report.trip + " (accounting is partial)\n";
  }
  if (!report.params.empty()) {
    out += "  parameters:\n";
    for (const auto& [key, value] : report.params) {
      out += "    " + key + " = " + value + "\n";
    }
  }
  if (!report.plan.empty()) {
    out += "  plan (executed operator chain, source first):\n";
    for (size_t i = 0; i < report.plan.size(); ++i) {
      const PlanOp& op = report.plan[i];
      std::snprintf(buf, sizeof(buf),
                    "    %s%s%s%s%s  rows_in=%llu rows_out=%llu\n",
                    std::string(2 * i, ' ').c_str(), i == 0 ? "" : "-> ",
                    op.op.c_str(), op.detail.empty() ? "" : " ",
                    op.detail.c_str(),
                    static_cast<unsigned long long>(op.rows_in),
                    static_cast<unsigned long long>(op.rows_out));
      out += buf;
    }
  }
  const AdvisorTrace& advisor = report.advisor;
  if (!advisor.candidates.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "  advisor search (method=%s, sample=%llu sets, "
                  "target=%llu sets, collisions=%s):\n",
                  advisor.method.c_str(),
                  static_cast<unsigned long long>(advisor.sample_size),
                  static_cast<unsigned long long>(
                      advisor.target_input_size),
                  advisor.used_ams_sketch ? "ams" : "exact");
    out += buf;
    std::snprintf(buf, sizeof(buf), "    %-2s %-18s %10s %14s %14s %14s\n",
                  "", "setting", "sigs/set", "pred_sigs", "pred_coll",
                  "est_F2");
    out += buf;
    for (const AdvisorCandidate& candidate : advisor.candidates) {
      std::snprintf(buf, sizeof(buf),
                    "    %-2s %-18s %10llu %14s %14s %14s\n",
                    candidate.chosen ? "->" : "", candidate.label.c_str(),
                    static_cast<unsigned long long>(
                        candidate.signatures_per_set),
                    FormatDouble(candidate.predicted_signatures).c_str(),
                    FormatDouble(candidate.predicted_collisions).c_str(),
                    FormatDouble(candidate.predicted_f2).c_str());
      out += buf;
    }
  }
  if (!report.drift.empty()) {
    out += "  drift (predicted / actual):\n";
    for (const DriftEntry& entry : report.drift) {
      std::string predicted =
          entry.has_predicted ? FormatDouble(entry.predicted) : "-";
      std::string actual =
          entry.has_actual ? FormatDouble(entry.actual) : "-";
      std::string ratio = (entry.has_predicted && entry.has_actual)
                              ? FormatDouble(entry.Ratio())
                              : "-";
      std::snprintf(buf, sizeof(buf),
                    "    %-26s predicted=%-12s actual=%-12s ratio=%s\n",
                    entry.name.c_str(), predicted.c_str(), actual.c_str(),
                    ratio.c_str());
      out += buf;
    }
  }
  // Bitmap pre-filter stage summary (derived from the drift actuals the
  // drivers record; both names are registered in obs/stability.h).
  double bitmap_checked = 0, bitmap_pruned = 0;
  for (const DriftEntry& entry : report.drift) {
    if (!entry.has_actual) continue;
    if (entry.name == "join.bitmap_filter_checked") {
      bitmap_checked = entry.actual;
    } else if (entry.name == "join.bitmap_filter_pruned") {
      bitmap_pruned = entry.actual;
    }
  }
  if (bitmap_checked > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  bitmap filter: checked=%.0f pruned=%.0f "
                  "prune_rate=%.1f%%\n",
                  bitmap_checked, bitmap_pruned,
                  100.0 * bitmap_pruned / bitmap_checked);
    out += buf;
  }
  out += "  runtime (excluded from the stable JSONL export):\n";
  std::snprintf(buf, sizeof(buf),
                "    siggen=%.3fs candpair=%.3fs postfilter=%.3fs\n",
                report.siggen_seconds, report.candpair_seconds,
                report.postfilter_seconds);
  out += buf;
  if (metrics != nullptr) {
    for (const MetricRecord& record : metrics->Snapshot()) {
      if (record.kind != MetricKind::kHistogram ||
          record.histogram_count == 0) {
        continue;
      }
      std::snprintf(
          buf, sizeof(buf),
          "    %s count=%llu p50<=%llu p95<=%llu p99<=%llu\n",
          record.name.c_str(),
          static_cast<unsigned long long>(record.histogram_count),
          static_cast<unsigned long long>(HistogramQuantile(record, 0.50)),
          static_cast<unsigned long long>(HistogramQuantile(record, 0.95)),
          static_cast<unsigned long long>(HistogramQuantile(record, 0.99)));
      out += buf;
    }
  }
  return out;
}

Status WriteExplainJsonl(const ExplainReport& report,
                         const std::string& path) {
  return WriteTextFile(path, ExplainJsonl(report));
}

}  // namespace ssjoin::obs
