// Per-join instrumentation handle: the one seam through which the join
// drivers time phases, open spans, and publish metrics.
//
// JoinTelemetry wraps an optional Tracer and an optional MetricsRegistry
// (either or both may be null — the null-sink default). Its contract:
//
//   * Null sinks cost nothing: every call is a branch on a null pointer;
//     no allocation, no locking, no clock reads beyond the phase timing
//     the drivers always did (JoinStats seconds). The zero-allocation
//     property is enforced by tests/obs.
//   * Phase timing feeds JoinStats directly: Phase()/Time() scopes
//     accumulate elapsed seconds into a caller-owned double, replacing
//     the raw PhaseTimer plumbing that used to live in src/core (the
//     `no-raw-timing` lint rule keeps it out).
//   * Stable vs runtime recording: Phase() opens kStable spans (the
//     deterministic join → phase skeleton); Sample() opens kRuntime
//     spans for shard/chunk/block detail and feeds latency histograms.
//
// Construction opens the root span; destruction closes it.
//
// Thread-safety (DESIGN.md Section 10): JoinTelemetry itself holds no
// lock because it owns no shared mutable state — root_ is written once
// in the constructor, and phase_span_ is *control-thread-confined*:
// only Phase(), called from the driver's control thread between
// parallel regions, writes it. Worker threads may use Sample(),
// Event(), Attr(), AddCount() and SetGauge() freely: those delegate to
// the Tracer and MetricsRegistry sinks, whose capabilities (their
// internal util::Mutex, see obs/trace.h and obs/metrics.h) serialize
// the actual mutation. There is deliberately no annotation that could
// express "confined to the control thread"; the parallel drivers
// enforce it structurally by never passing the JoinTelemetry handle
// into ParallelFor bodies — only raw Tracer*/Histogram* handles.

#pragma once

#include <cstdint>
#include <string_view>

#include "obs/metrics.h"
#include "obs/stability.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace ssjoin::obs {

// Canonical phase-span names (the paper's Figure 2 steps). These mirror
// util/timer.h's kPhase* constants, which remain for the modules that
// still use PhaseTimer directly (baselines, util tests).
inline constexpr std::string_view kPhaseSigGen = "SigGen";
inline constexpr std::string_view kPhaseCandPair = "CandPair";
inline constexpr std::string_view kPhasePostFilter = "PostFilter";

class JoinTelemetry {
 public:
  /// Either sink may be null. `root_name` names the root span (the
  /// drivers use "join" with a "mode" attribute so the stable span
  /// skeleton is identical for every execution path of one mode).
  JoinTelemetry(Tracer* tracer, MetricsRegistry* metrics,
                std::string_view root_name);
  ~JoinTelemetry();

  JoinTelemetry(const JoinTelemetry&) = delete;
  JoinTelemetry& operator=(const JoinTelemetry&) = delete;

  Tracer* tracer() const { return tracer_; }
  MetricsRegistry* metrics() const { return metrics_; }
  SpanId root() const { return root_; }
  bool tracing() const { return tracer_ != nullptr; }

  /// RAII timing scope: on destruction adds the elapsed seconds to
  /// `*seconds` and closes the span (if one was opened).
  class PhaseScope {
   public:
    PhaseScope(JoinTelemetry* telemetry, double* seconds, SpanId span)
        : telemetry_(telemetry), seconds_(seconds), span_(span) {}
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;
    ~PhaseScope();

   private:
    JoinTelemetry* telemetry_;
    double* seconds_;
    SpanId span_;
    Stopwatch watch_;
  };

  /// Opens a kStable phase span under the root and times it into
  /// `*seconds`. Must be called from the control thread; the most recent
  /// phase span is the parent for Sample() scopes and PhaseAttr().
  PhaseScope Phase(std::string_view name, double* seconds);

  /// Timer-only variant for interleaved execution (the pipelined
  /// drivers' per-item scopes, far too fine-grained for spans).
  PhaseScope Time(double* seconds);

  /// The most recent Phase() span (kNoSpan before the first).
  SpanId phase_span() const { return phase_span_; }

  /// Manual counterpart to Phase() for phases that cannot live inside
  /// one lexical scope (an operator whose phase spans several
  /// NextBatch() pulls). PhaseBegin opens the kStable span and starts
  /// the clock; PhaseEnd closes the span and adds the elapsed seconds
  /// to the double captured at PhaseBegin. At most one manual phase may
  /// be open per JoinTelemetry; PhaseEnd with none open is a no-op, and
  /// both calls are control-thread-only like Phase(). Pass an empty
  /// name for the timer-only variant (mirrors Time(): no span even when
  /// tracing).
  void PhaseBegin(std::string_view name, double* seconds);
  void PhaseEnd();

  /// True between PhaseBegin() and the matching PhaseEnd().
  bool manual_phase_open() const { return manual_seconds_ != nullptr; }

  /// Sets an attribute on the most recent phase span (no-op untraced).
  void PhaseAttr(std::string_view key, uint64_t value);

  /// RAII sampling scope for runtime detail: opens a kRuntime span (when
  /// tracing) under the current phase span — or the root if no phase is
  /// open — and, when `latency` is non-null, records the elapsed
  /// microseconds into it on destruction. Safe to use from worker
  /// threads (lane disambiguates concurrent scopes).
  class SampleScope {
   public:
    SampleScope(JoinTelemetry* telemetry, Histogram* latency, SpanId span)
        : telemetry_(telemetry), latency_(latency), span_(span) {}
    SampleScope(const SampleScope&) = delete;
    SampleScope& operator=(const SampleScope&) = delete;
    ~SampleScope();

    SpanId span() const { return span_; }

   private:
    JoinTelemetry* telemetry_;
    Histogram* latency_;
    SpanId span_;
    Stopwatch watch_;
  };

  SampleScope Sample(std::string_view name, Histogram* latency = nullptr,
                     uint32_t lane = 0);

  /// Root-span helpers (all no-ops without the corresponding sink).
  void Event(std::string_view name, std::string_view detail);
  void Attr(std::string_view key, uint64_t value);
  void Attr(std::string_view key, double value);
  void Attr(std::string_view key, std::string_view value);

  /// Metric helpers (no-ops without a registry). These take the registry
  /// mutex — fine for end-of-join accounting, not for per-item loops
  /// (cache a Counter*/Histogram* for those).
  void AddCount(std::string_view name, uint64_t delta,
                Stability stability = Stability::kStable);
  void SetGauge(std::string_view name, double value,
                Stability stability = Stability::kStable);

 private:
  Tracer* tracer_;
  MetricsRegistry* metrics_;
  SpanId root_ = kNoSpan;
  SpanId phase_span_ = kNoSpan;
  SpanId manual_span_ = kNoSpan;
  double* manual_seconds_ = nullptr;
  Stopwatch manual_watch_;
};

/// Per-operator pipeline instrumentation (DESIGN.md Section 14). One
/// OpInstrument lives in each pipeline Operator; Plan::Run binds it when
/// the run has a MetricsRegistry. Bound, it owns four counters named
/// "pipeline.<tag>." + {batches, rows_in, rows_out, ns} — row totals are
/// kStable (functions of input and plan, exactly equal at any thread
/// count / spill mode), batch counts and self-time are kRuntime (batch
/// granularity is thread-count-dependent, ns is wall clock) — plus one
/// kRuntime span per operator when tracing. Unbound it is the null sink:
/// enabled() is one branch, and Operator::Pull falls straight through to
/// NextBatch with no clock read and no allocation.
///
/// The clock reads live here, in the obs layer, so src/core stays clean
/// under the `no-raw-timing` lint: core calls the opaque NowNs()/
/// RecordPull() seams. Self-time attribution: Pull passes the elapsed
/// time of the nested input Pull (via inclusive_ns()) and RecordPull
/// charges only the difference, so operator times sum to the chain's
/// wall time instead of multiply counting.
///
/// Thread-confinement: like JoinTelemetry's phase state, an OpInstrument
/// is control-thread-confined — the Volcano pull loop is single-threaded
/// (parallelism lives inside operators), so the members need no lock.
/// The counters it publishes to are atomic, which is what the heartbeat
/// thread reads.
class OpInstrument {
 public:
  OpInstrument() = default;
  OpInstrument(const OpInstrument&) = delete;
  OpInstrument& operator=(const OpInstrument&) = delete;

  /// Binds to the run's sinks: registers the four pipeline.<tag>.*
  /// counters in telemetry->metrics() (no-op when null) and opens the
  /// operator's kRuntime span under the root when tracing. `lane` is
  /// the operator's position in the chain (distinct trace lanes).
  void Bind(JoinTelemetry* telemetry, std::string_view tag, uint32_t lane);

  bool enabled() const { return batches_ != nullptr; }

  /// Monotonic nanoseconds; only meaningful for differences. Callers
  /// must guard with enabled() — the null sink never reads a clock.
  int64_t NowNs() const;

  /// Accounts one Pull: `start_ns` from NowNs() before NextBatch,
  /// `nested_ns` the inclusive time the input operator consumed inside
  /// this pull, `produced` whether a data batch came out. Publishes the
  /// row totals as deltas against the last published values, so the
  /// heartbeat sees live counts mid-join.
  void RecordPull(int64_t start_ns, uint64_t nested_ns, bool produced,
                  uint64_t rows_in, uint64_t rows_out);

  /// Total time spent inside this operator's Pull calls (including its
  /// inputs) — the parent's nested_ns.
  uint64_t inclusive_ns() const { return inclusive_ns_; }

  /// Flushes the final row totals and closes the operator span. Called
  /// from Operator::Close on every exit path; idempotent.
  void FinishCounts(uint64_t rows_in, uint64_t rows_out);

 private:
  Counter* batches_ = nullptr;
  Counter* rows_in_ = nullptr;
  Counter* rows_out_ = nullptr;
  Counter* self_ns_ = nullptr;
  Tracer* tracer_ = nullptr;
  SpanId span_ = kNoSpan;
  uint64_t inclusive_ns_ = 0;
  uint64_t published_rows_in_ = 0;
  uint64_t published_rows_out_ = 0;
};

}  // namespace ssjoin::obs
