#include "obs/metrics.h"

#include <bit>
#include <cmath>

#include "util/check.h"

namespace ssjoin::obs {

void Histogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
}

uint64_t HistogramBucketUpperBound(uint32_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return UINT64_MAX;
  return (uint64_t{1} << bucket) - 1;
}

namespace {

uint64_t BucketUpperBound(uint32_t bucket) {
  return HistogramBucketUpperBound(bucket);
}

uint64_t QuantileFromBuckets(
    const std::vector<std::pair<uint32_t, uint64_t>>& buckets,
    uint64_t count, double q) {
  if (count == 0) return 0;
  if (!(q > 0)) q = 0;  // also maps NaN to the minimum
  if (q > 1) q = 1;
  // Rank of the q-quantile among the `count` sorted values, 1-based;
  // rank 0 (q == 0) is clamped to the minimum recorded value.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (const auto& [bucket, n] : buckets) {
    seen += n;
    if (seen >= rank) return BucketUpperBound(bucket);
  }
  // Unreachable when `count` matches the bucket totals; be permissive
  // with inconsistent snapshots and report the largest bucket seen.
  return buckets.empty() ? 0 : BucketUpperBound(buckets.back().first);
}

}  // namespace

uint64_t HistogramQuantile(const Histogram& histogram, double q) {
  std::vector<std::pair<uint32_t, uint64_t>> buckets;
  uint64_t count = 0;
  for (uint32_t i = 0; i < Histogram::kBuckets; ++i) {
    uint64_t n = histogram.bucket(i);
    if (n > 0) {
      buckets.emplace_back(i, n);
      count += n;
    }
  }
  // Count from the buckets themselves: Record() is not atomic across its
  // three fetch_adds, so count() can momentarily disagree mid-update.
  return QuantileFromBuckets(buckets, count, q);
}

uint64_t HistogramQuantile(const MetricRecord& record, double q) {
  if (record.kind != MetricKind::kHistogram) return 0;
  uint64_t count = 0;
  for (const auto& [bucket, n] : record.histogram_buckets) count += n;
  return QuantileFromBuckets(record.histogram_buckets, count, q);
}

MetricsRegistry::Entry& MetricsRegistry::FindOrCreate(std::string_view name,
                                                      MetricKind kind,
                                                      Stability stability) {
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    SSJOIN_CHECK(it->second.kind == kind,
                 "metric '", std::string(name),
                 "' re-registered as a different kind");
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.stability = stability;
  switch (kind) {
    case MetricKind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return metrics_.emplace(std::string(name), std::move(entry))
      .first->second;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  Stability stability) {
  util::MutexLock lock(mutex_);
  return *FindOrCreate(name, MetricKind::kCounter, stability).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Stability stability) {
  util::MutexLock lock(mutex_);
  return *FindOrCreate(name, MetricKind::kGauge, stability).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      Stability stability) {
  util::MutexLock lock(mutex_);
  return *FindOrCreate(name, MetricKind::kHistogram, stability).histogram;
}

std::vector<MetricRecord> MetricsRegistry::Snapshot() const {
  util::MutexLock lock(mutex_);
  std::vector<MetricRecord> records;
  records.reserve(metrics_.size());
  // std::map iteration is already name-sorted.
  for (const auto& [name, entry] : metrics_) {
    MetricRecord record;
    record.name = name;
    record.kind = entry.kind;
    record.stability = entry.stability;
    switch (entry.kind) {
      case MetricKind::kCounter:
        record.counter_value = entry.counter->value();
        break;
      case MetricKind::kGauge:
        record.gauge_value = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        record.histogram_count = entry.histogram->count();
        record.histogram_sum = entry.histogram->sum();
        for (uint32_t i = 0; i < Histogram::kBuckets; ++i) {
          uint64_t n = entry.histogram->bucket(i);
          if (n > 0) record.histogram_buckets.emplace_back(i, n);
        }
        break;
    }
    records.push_back(std::move(record));
  }
  return records;
}

size_t MetricsRegistry::size() const {
  util::MutexLock lock(mutex_);
  return metrics_.size();
}

}  // namespace ssjoin::obs
