#include "obs/metrics.h"

#include <bit>

#include "util/check.h"

namespace ssjoin::obs {

void Histogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
}

MetricsRegistry::Entry& MetricsRegistry::FindOrCreate(std::string_view name,
                                                      MetricKind kind,
                                                      Stability stability) {
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    SSJOIN_CHECK(it->second.kind == kind,
                 "metric '", std::string(name),
                 "' re-registered as a different kind");
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.stability = stability;
  switch (kind) {
    case MetricKind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return metrics_.emplace(std::string(name), std::move(entry))
      .first->second;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  Stability stability) {
  std::lock_guard<std::mutex> lock(mutex_);
  return *FindOrCreate(name, MetricKind::kCounter, stability).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Stability stability) {
  std::lock_guard<std::mutex> lock(mutex_);
  return *FindOrCreate(name, MetricKind::kGauge, stability).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      Stability stability) {
  std::lock_guard<std::mutex> lock(mutex_);
  return *FindOrCreate(name, MetricKind::kHistogram, stability).histogram;
}

std::vector<MetricRecord> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricRecord> records;
  records.reserve(metrics_.size());
  // std::map iteration is already name-sorted.
  for (const auto& [name, entry] : metrics_) {
    MetricRecord record;
    record.name = name;
    record.kind = entry.kind;
    record.stability = entry.stability;
    switch (entry.kind) {
      case MetricKind::kCounter:
        record.counter_value = entry.counter->value();
        break;
      case MetricKind::kGauge:
        record.gauge_value = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        record.histogram_count = entry.histogram->count();
        record.histogram_sum = entry.histogram->sum();
        for (uint32_t i = 0; i < Histogram::kBuckets; ++i) {
          uint64_t n = entry.histogram->bucket(i);
          if (n > 0) record.histogram_buckets.emplace_back(i, n);
        }
        break;
    }
    records.push_back(std::move(record));
  }
  return records;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.size();
}

}  // namespace ssjoin::obs
