// Named counters, gauges, and histograms for join execution.
//
// One MetricsRegistry collects everything a run publishes — signature
// and candidate totals from the drivers, guard-trip causes from
// ExecutionGuard, fork-join activity from the thread pool, row counts
// from the relational plans. Handles returned by counter()/gauge()/
// histogram() have stable addresses for the registry's lifetime, so hot
// paths register once and then touch a single atomic.
//
// Naming convention: dotted lowercase paths ("join.candidates",
// "guard.trips.deadline", "threadpool.forkjoins"). Registering the same
// name twice returns the same instrument; registering it as a different
// kind is a contract violation.
//
// Determinism: each metric carries a Stability class (obs/stability.h);
// the deterministic JSONL exporter emits only kStable metrics, sorted
// by name, so the bytes are identical for every thread count.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/stability.h"
#include "util/thread_annotations.h"

namespace ssjoin::obs {

/// Monotonic event count. Thread-safe, wait-free.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins point-in-time value. Thread-safe.
class Gauge {
 public:
  void Set(double value) {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Power-of-two histogram: bucket i counts recorded values v with
/// bit_width(v) == i, i.e. bucket 0 holds v == 0 and bucket i >= 1 holds
/// [2^(i-1), 2^i). Coarse but allocation-free, wait-free, and wide
/// enough for both latencies in microseconds and candidate counts.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  // bit_width(v) for uint64 is 0..64

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric's snapshot (exporter input).
struct MetricRecord {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  Stability stability = Stability::kStable;
  uint64_t counter_value = 0;
  double gauge_value = 0;
  uint64_t histogram_count = 0;
  uint64_t histogram_sum = 0;
  /// (bucket index, count) for non-empty buckets only.
  std::vector<std::pair<uint32_t, uint64_t>> histogram_buckets;
};

/// Inclusive upper bound of power-of-two bucket i: bucket 0 holds
/// exactly 0, bucket i >= 1 holds [2^(i-1), 2^i), bucket 64 tops out at
/// UINT64_MAX. Shared by the quantile estimator below and the
/// OpenMetrics `le` bucket labels (obs/openmetrics.cc).
uint64_t HistogramBucketUpperBound(uint32_t bucket);

/// Quantile estimate from a power-of-two histogram: the inclusive upper
/// bound of the bucket holding the rank-ceil(q * count) smallest
/// recorded value (so bucket 0 reports 0 and bucket i >= 1 reports
/// 2^i - 1 — the worst case for a value in [2^(i-1), 2^i)). A
/// conservative estimate: the true quantile is <= the returned value,
/// and within 2x of it for non-zero values. Returns 0 for an empty
/// histogram; q is clamped to (0, 1].
uint64_t HistogramQuantile(const Histogram& histogram, double q);

/// Same, over a snapshot record (exporters/explain work on snapshots).
/// Non-histogram records report 0.
uint64_t HistogramQuantile(const MetricRecord& record, double q);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named instrument. The returned reference stays
  /// valid for the registry's lifetime. The stability argument only
  /// matters on first registration. (The handle's own operations are
  /// atomic — the registry mutex only protects the name table, which is
  /// why hot paths register once and then touch the handle lock-free.)
  Counter& counter(std::string_view name,
                   Stability stability = Stability::kStable)
      SSJOIN_EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name,
               Stability stability = Stability::kStable)
      SSJOIN_EXCLUDES(mutex_);
  Histogram& histogram(std::string_view name,
                       Stability stability = Stability::kRuntime)
      SSJOIN_EXCLUDES(mutex_);

  /// All metrics, sorted by name (deterministic exporter order).
  std::vector<MetricRecord> Snapshot() const SSJOIN_EXCLUDES(mutex_);

  size_t size() const SSJOIN_EXCLUDES(mutex_);

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    Stability stability = Stability::kStable;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& FindOrCreate(std::string_view name, MetricKind kind,
                      Stability stability) SSJOIN_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  std::map<std::string, Entry, std::less<>> metrics_
      SSJOIN_GUARDED_BY(mutex_);
};

}  // namespace ssjoin::obs
