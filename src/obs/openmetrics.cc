#include "obs/openmetrics.h"

#include <cinttypes>
#include <cstdio>

#include "obs/export.h"
#include "obs/json_util.h"

namespace ssjoin::obs {

namespace {

std::string_view StabilityWord(Stability stability) {
  return stability == Stability::kStable ? "stable" : "runtime";
}

std::string_view KindWord(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "counter";
}

/// "join.spill.bytes_written" -> "ssjoin_join_spill_bytes_written".
std::string ExposedName(const std::string& name) {
  std::string out = "ssjoin_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void AppendSample(std::string* out, const std::string& name,
                  uint64_t value) {
  *out += name;
  *out += ' ';
  json::AppendUint(out, value);
  *out += '\n';
}

void AppendHistogram(std::string* out, const std::string& exposed,
                     const MetricRecord& record) {
  // OpenMetrics buckets are cumulative; the snapshot's are per-bucket.
  uint64_t cumulative = 0;
  for (const auto& [bucket, n] : record.histogram_buckets) {
    cumulative += n;
    *out += exposed;
    *out += "_bucket{le=\"";
    json::AppendUint(out, HistogramBucketUpperBound(bucket));
    *out += "\"} ";
    json::AppendUint(out, cumulative);
    *out += '\n';
  }
  *out += exposed;
  *out += "_bucket{le=\"+Inf\"} ";
  json::AppendUint(out, cumulative);
  *out += '\n';
  AppendSample(out, exposed + "_sum", record.histogram_sum);
  AppendSample(out, exposed + "_count", record.histogram_count);
}

}  // namespace

std::string OpenMetricsText(const std::vector<MetricRecord>& records) {
  std::string out;
  out.reserve(64 + records.size() * 96);
  for (const MetricRecord& record : records) {
    const std::string exposed = ExposedName(record.name);
    out += "# TYPE ";
    out += exposed;
    out += ' ';
    out += KindWord(record.kind);
    out += '\n';
    out += "# HELP ";
    out += exposed;
    out += ' ';
    out += record.name;
    out += " (";
    out += StabilityWord(record.stability);
    out += ")\n";
    switch (record.kind) {
      case MetricKind::kCounter:
        AppendSample(&out, exposed + "_total", record.counter_value);
        break;
      case MetricKind::kGauge:
        out += exposed;
        out += ' ';
        json::AppendDouble(&out, record.gauge_value);
        out += '\n';
        break;
      case MetricKind::kHistogram:
        AppendHistogram(&out, exposed, record);
        break;
    }
  }
  out += "# EOF\n";
  return out;
}

std::string OpenMetricsText(const MetricsRegistry& metrics) {
  return OpenMetricsText(metrics.Snapshot());
}

Status WriteOpenMetrics(const MetricsRegistry& metrics,
                        const std::string& path) {
  return WriteTextFile(path, OpenMetricsText(metrics));
}

}  // namespace ssjoin::obs
