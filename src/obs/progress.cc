#include "obs/progress.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/execution_guard.h"
#include "obs/metrics.h"
#include "obs/stability.h"

namespace ssjoin::obs {

namespace {

// Process-wide signal forwarding target. An atomic pointer so both the
// installer and the (async-signal-context) notifier are lock-free.
std::atomic<ProgressReporter*> g_signal_target{nullptr};

}  // namespace

ProgressReporter::ProgressReporter(Logger* logger, MetricsRegistry* metrics,
                                   const ExecutionGuard* guard,
                                   int64_t interval_ms)
    : logger_(logger),
      metrics_(metrics),
      guard_(guard),
      interval_ms_(interval_ms) {
  if (logger_ != nullptr && metrics_ != nullptr) {
    beats_counter_ =
        &metrics_->counter(names::kProgressBeats, Stability::kRuntime);
    dumps_counter_ =
        &metrics_->counter(names::kProgressDumps, Stability::kRuntime);
  }
}

ProgressReporter::~ProgressReporter() {
  // Never leave a dangling signal target behind.
  ProgressReporter* self = this;
  g_signal_target.compare_exchange_strong(self, nullptr,
                                          std::memory_order_relaxed);
  Stop();
}

void ProgressReporter::Start() {
  if (logger_ == nullptr || interval_ms_ <= 0) return;
  util::MutexLock lock(mutex_);
  if (running_) return;
  stop_requested_ = false;
  // Joined in Stop() (see the thread_ member comment for why this is a
  // raw thread and not a pool job).
  thread_ = std::thread([this] { HeartbeatLoop(); });  // ssjoin-lint: allow(no-unjoined-thread)
  running_ = true;
}

void ProgressReporter::Stop() {
  std::thread to_join;  // ssjoin-lint: allow(no-unjoined-thread)
  {
    util::MutexLock lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
    wake_.NotifyAll();
    to_join = std::move(thread_);
    running_ = false;
  }
  to_join.join();
}

void ProgressReporter::DumpNow() { Beat(/*requested=*/true); }

void ProgressReporter::HeartbeatLoop() {
  // Sleep in short slices so a RequestDump() (e.g. SIGUSR1) is serviced
  // within ~100ms even for long intervals, and count slices instead of
  // reading a clock — the logger stamps each record anyway, and beat
  // cadence is runtime-only data.
  const int64_t interval_us = interval_ms_ * 1000;
  const int64_t slice_us = std::min<int64_t>(interval_us, 100 * 1000);
  const int64_t slices_per_beat =
      std::max<int64_t>(1, interval_us / slice_us);
  int64_t slice = 0;
  for (;;) {
    {
      util::MutexLock lock(mutex_);
      if (stop_requested_) return;
      (void)wake_.WaitFor(lock, slice_us);
      if (stop_requested_) return;
    }
    if (dump_requested_.exchange(0, std::memory_order_relaxed) != 0) {
      Beat(/*requested=*/true);
    }
    if (++slice >= slices_per_beat) {
      slice = 0;
      Beat(/*requested=*/false);
    }
  }
}

void ProgressReporter::Beat(bool requested) {
  if (logger_ == nullptr) return;
  const uint64_t beat = beats_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (beats_counter_ != nullptr) beats_counter_->Add();
  if (requested && dumps_counter_ != nullptr) dumps_counter_->Add();

  std::vector<LogField> fields;
  fields.emplace_back("beat", beat);
  fields.emplace_back("requested", requested);
  if (guard_ != nullptr) {
    fields.emplace_back("guard.phase",
                        JoinPhaseName(guard_->current_phase()));
    fields.emplace_back("guard.elapsed_s", guard_->ElapsedSeconds());
    fields.emplace_back("guard.memory_bytes",
                        static_cast<uint64_t>(guard_->memory_charged()));
    fields.emplace_back(
        "guard.memory_high_water",
        static_cast<uint64_t>(guard_->memory_high_water()));
    fields.emplace_back("guard.disk_bytes",
                        static_cast<uint64_t>(guard_->disk_charged()));
    fields.emplace_back("guard.disk_high_water",
                        static_cast<uint64_t>(guard_->disk_high_water()));
    fields.emplace_back("guard.tripped", guard_->tripped());
  }

  std::vector<MetricRecord> snapshot;
  std::vector<std::string> histogram_keys;  // backing for ".count" keys
  if (metrics_ != nullptr) {
    snapshot = metrics_->Snapshot();
    // Reserve up front: LogField borrows the key string_views, so the
    // backing vector must never reallocate once referenced.
    histogram_keys.reserve(snapshot.size());
    for (const MetricRecord& record : snapshot) {
      switch (record.kind) {
        case MetricKind::kCounter:
          fields.emplace_back(std::string_view(record.name),
                              record.counter_value);
          break;
        case MetricKind::kGauge:
          fields.emplace_back(std::string_view(record.name),
                              record.gauge_value);
          break;
        case MetricKind::kHistogram:
          histogram_keys.push_back(record.name + ".count");
          fields.emplace_back(std::string_view(histogram_keys.back()),
                              record.histogram_count);
          break;
      }
    }
  }
  logger_->Log(LogLevel::kInfo, names::kLogEventProgress, fields.data(),
               fields.size());
}

void ProgressReporter::InstallSignalTarget(ProgressReporter* reporter) {
  g_signal_target.store(reporter, std::memory_order_relaxed);
}

void ProgressReporter::NotifySignalTarget() {
  ProgressReporter* target = g_signal_target.load(std::memory_order_relaxed);
  if (target != nullptr) target->RequestDump();
}

}  // namespace ssjoin::obs
