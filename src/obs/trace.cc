#include "obs/trace.h"

#include "util/check.h"

namespace ssjoin::obs {

AttrValue AttrValue::Uint(uint64_t v) {
  AttrValue value;
  value.kind = Kind::kUint;
  value.u = v;
  return value;
}

AttrValue AttrValue::Double(double v) {
  AttrValue value;
  value.kind = Kind::kDouble;
  value.d = v;
  return value;
}

AttrValue AttrValue::String(std::string_view v) {
  AttrValue value;
  value.kind = Kind::kString;
  value.s = std::string(v);
  return value;
}

SpanId Tracer::StartSpan(std::string_view name, SpanId parent,
                         Stability stability, uint32_t lane) {
  util::MutexLock lock(mutex_);
  SpanRecord span;
  span.id = static_cast<SpanId>(spans_.size() + 1);
  span.parent = parent;
  span.name = std::string(name);
  span.stability = stability;
  span.lane = lane;
  span.start_us = epoch_.ElapsedMicros();
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

SpanRecord* Tracer::Find(SpanId id) {
  if (id == kNoSpan || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

void Tracer::EndSpan(SpanId id) {
  util::MutexLock lock(mutex_);
  SpanRecord* span = Find(id);
  SSJOIN_CHECK(span != nullptr, "EndSpan: unknown span id ", id);
  span->end_us = epoch_.ElapsedMicros();
}

void Tracer::AddEvent(SpanId id, std::string_view name,
                      std::string_view detail) {
  util::MutexLock lock(mutex_);
  SpanRecord* span = Find(id);
  SSJOIN_CHECK(span != nullptr, "AddEvent: unknown span id ", id);
  SpanEvent event;
  event.name = std::string(name);
  event.detail = std::string(detail);
  event.at_us = epoch_.ElapsedMicros();
  span->events.push_back(std::move(event));
}

void Tracer::SetAttrValue(SpanId id, std::string_view key,
                          AttrValue value) {
  util::MutexLock lock(mutex_);
  SpanRecord* span = Find(id);
  SSJOIN_CHECK(span != nullptr, "SetAttr: unknown span id ", id);
  for (auto& [existing, slot] : span->attrs) {
    if (existing == key) {
      slot = std::move(value);
      return;
    }
  }
  span->attrs.emplace_back(std::string(key), std::move(value));
}

void Tracer::SetAttr(SpanId id, std::string_view key, uint64_t value) {
  SetAttrValue(id, key, AttrValue::Uint(value));
}

void Tracer::SetAttr(SpanId id, std::string_view key, double value) {
  SetAttrValue(id, key, AttrValue::Double(value));
}

void Tracer::SetAttr(SpanId id, std::string_view key,
                     std::string_view value) {
  SetAttrValue(id, key, AttrValue::String(value));
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  util::MutexLock lock(mutex_);
  return spans_;
}

size_t Tracer::span_count() const {
  util::MutexLock lock(mutex_);
  return spans_.size();
}

void Tracer::Reset() {
  util::MutexLock lock(mutex_);
  spans_.clear();
}

}  // namespace ssjoin::obs
