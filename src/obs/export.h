// Exporters for Tracer spans and MetricsRegistry snapshots.
//
// Three renderings of one recording (DESIGN.md Section 8):
//
//   * Deterministic JSONL — one JSON object per line, kStable data only,
//     no wall-clock fields: byte-identical for every thread count and
//     every run on the same input, so CI can diff the files as
//     artifacts. TraceJsonl + MetricsJsonl, or both in one file via
//     WriteJsonlReport.
//   * Chrome trace_event JSON — every span (stable and runtime) with
//     real timestamps, loadable in about:tracing and Perfetto. Shard and
//     chunk spans render on per-lane tracks.
//   * Human run report — the span tree with durations plus a metrics
//     table, for terminals and bench logs.
//
// In the deterministic JSONL stream span ids are re-numbered over the
// stable subset (1, 2, ...) so interleaved runtime spans cannot perturb
// the bytes.

#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace ssjoin::obs {

/// Deterministic JSONL rendering of the stable spans, in creation order.
std::string TraceJsonl(const Tracer& tracer);

/// Deterministic JSONL rendering of the stable metrics, name-sorted.
std::string MetricsJsonl(const MetricsRegistry& metrics);

/// Chrome trace_event rendering of every span (with timestamps).
std::string ChromeTraceJson(const Tracer& tracer);

/// Human-readable run report: span tree with durations, then a metrics
/// table (runtime entries marked). Either input may be null.
std::string RunReportText(const Tracer* tracer,
                          const MetricsRegistry* metrics);

/// Writes `content` to `path` verbatim (fopen/fwrite, no tmp-rename).
/// Shared by every exporter here and by obs/explain.cc.
Status WriteTextFile(const std::string& path, const std::string& content);

Status WriteTraceJsonl(const Tracer& tracer, const std::string& path);
Status WriteMetricsJsonl(const MetricsRegistry& metrics,
                         const std::string& path);
Status WriteChromeTrace(const Tracer& tracer, const std::string& path);

/// One deterministic JSONL file with the trace lines followed by the
/// metric lines — the "structured run report" the benches emit next to
/// their BENCH_*.json. Either input may be null (its lines are omitted).
Status WriteJsonlReport(const Tracer* tracer,
                        const MetricsRegistry* metrics,
                        const std::string& path);

/// Writes `trace` to `path`, choosing the format from the extension:
/// ".jsonl" selects the deterministic JSONL stream, anything else the
/// Chrome trace_event JSON (the CLI/bench --trace-out contract).
Status WriteTraceAuto(const Tracer& tracer, const std::string& path);

}  // namespace ssjoin::obs
