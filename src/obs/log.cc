#include "obs/log.h"

#include <chrono>

#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/stability.h"

namespace ssjoin::obs {

namespace {

int64_t WallClockMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void AppendField(std::string* out, const LogField& field) {
  json::AppendJsonString(out, field.key);
  *out += ':';
  switch (field.kind) {
    case LogField::Kind::kUint:
      json::AppendUint(out, field.u);
      break;
    case LogField::Kind::kInt:
      json::AppendInt(out, field.i);
      break;
    case LogField::Kind::kDouble:
      json::AppendDouble(out, field.d);
      break;
    case LogField::Kind::kBool:
      json::AppendBool(out, field.b);
      break;
    case LogField::Kind::kString:
      json::AppendJsonString(out, field.s);
      break;
  }
}

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

Logger::Logger(std::FILE* sink, LoggerOptions options)
    : min_level_(static_cast<int>(options.min_level)),
      sink_(sink),
      clock_(std::move(options.clock)) {}

Logger::~Logger() {
  util::MutexLock lock(mutex_);
  if (sink_ != nullptr) {
    if (owns_sink_) {
      // Best-effort teardown of our own file: nowhere left to report.
      std::fclose(sink_);  // ssjoin-lint: allow(no-unchecked-io)
    } else {
      // Borrowed stream: leave it open, flushed.
      std::fflush(sink_);  // ssjoin-lint: allow(no-unchecked-io)
    }
    sink_ = nullptr;
  }
}

Result<std::unique_ptr<Logger>> Logger::Open(const std::string& path,
                                             LoggerOptions options) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError("cannot open log file: " + path);
  }
  auto logger = std::make_unique<Logger>(f, std::move(options));
  util::MutexLock lock(logger->mutex_);
  logger->owns_sink_ = true;
  return logger;
}

void Logger::Log(LogLevel level, std::string_view event,
                 const LogField* fields, size_t num_fields) {
  if (!ShouldLog(level)) return;

  std::string line;
  line.reserve(96);
  util::MutexLock lock(mutex_);
  line += "{\"ts_us\":";
  json::AppendInt(&line, clock_ ? clock_() : WallClockMicros());
  line += ",\"seq\":";
  json::AppendUint(&line, seq_++);
  line += ",\"level\":";
  json::AppendJsonString(&line, LogLevelName(level));
  line += ",\"event\":";
  json::AppendJsonString(&line, event);
  for (size_t i = 0; i < num_fields; ++i) {
    line += ',';
    AppendField(&line, fields[i]);
  }
  line += "}\n";
  WriteLine(line);
  lines_.fetch_add(1, std::memory_order_relaxed);
  if (Counter* c = level_counters_[static_cast<int>(level)]) c->Add();
}

void Logger::WriteLine(const std::string& line) {
  if (sink_ == nullptr) return;
  const size_t written = std::fwrite(line.data(), 1, line.size(), sink_);
  if (written != line.size() && write_errors_ != nullptr) {
    write_errors_->Add();
  }
}

void Logger::BindMetrics(MetricsRegistry* metrics) {
  util::MutexLock lock(mutex_);
  if (metrics == nullptr) {
    for (auto& c : level_counters_) c = nullptr;
    write_errors_ = nullptr;
    return;
  }
  // Log volume depends on wall-clock pacing (heartbeat) and thread
  // interleaving, so every log.* metric is runtime-only.
  level_counters_[static_cast<int>(LogLevel::kDebug)] =
      &metrics->counter(names::kLogLinesDebug, Stability::kRuntime);
  level_counters_[static_cast<int>(LogLevel::kInfo)] =
      &metrics->counter(names::kLogLinesInfo, Stability::kRuntime);
  level_counters_[static_cast<int>(LogLevel::kWarn)] =
      &metrics->counter(names::kLogLinesWarn, Stability::kRuntime);
  level_counters_[static_cast<int>(LogLevel::kError)] =
      &metrics->counter(names::kLogLinesError, Stability::kRuntime);
  write_errors_ =
      &metrics->counter(names::kLogWriteErrors, Stability::kRuntime);
}

void Logger::Flush() {
  util::MutexLock lock(mutex_);
  if (sink_ != nullptr && std::fflush(sink_) != 0 &&
      write_errors_ != nullptr) {
    write_errors_->Add();
  }
}

}  // namespace ssjoin::obs
