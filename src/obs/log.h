// Structured, leveled JSONL logging (DESIGN.md Section 14).
//
// One Logger writes one JSON object per line to a FILE* sink — a path it
// owns or a borrowed stream (stderr, a test pipe). Records are flat:
// timestamp, sequence number, level, event name, then the call's typed
// fields. The event name is part of the telemetry vocabulary
// (obs/stability.h; the telemetry-registry lint checks Log()/LogEvent()
// call sites), so log streams, traces and metrics agree on naming.
//
// Contracts:
//
//   * Thread-safe: one internal util::Mutex serializes formatting and
//     the write, so concurrent records never interleave bytes. Level
//     filtering is a lock-free atomic read — a suppressed record costs
//     one load and never formats anything.
//   * Null-sink: instrumented code logs through the null-safe LogEvent()
//     seam; a null Logger* costs one pointer compare — no allocation,
//     no clock read (same contract as obs/join_telemetry.h, enforced by
//     tests/obs/null_sink_alloc_test.cc).
//   * Deterministic in tests: the clock is injectable
//     (LoggerOptions::clock returns microseconds); with a scripted clock
//     and a fixed sequence of calls the emitted bytes are reproducible.
//     The default clock is the system wall clock — log records are for
//     humans and log shippers, not for the byte-diffed deterministic
//     exports (those stay in obs/export.h).
//
// The level vocabulary is the conventional four: debug < info < warn <
// error. util/logging.h's SSJOIN_LOG remains for process-fatal plumbing
// predating this layer; runtime diagnostics from the join paths go
// through here.

#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace ssjoin::obs {

class MetricsRegistry;
class Counter;

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Stable lowercase name ("debug", "info", "warn", "error").
std::string_view LogLevelName(LogLevel level);

/// Parses a level name (the --log-level flag). Returns false (and leaves
/// `*out` untouched) for anything but the four names above.
bool ParseLogLevel(std::string_view text, LogLevel* out);

/// One typed key/value of a log record. Keys and string values are
/// borrowed string_views: they must outlive the Log() call (string
/// literals and registered names:: constants always do).
struct LogField {
  enum class Kind { kUint, kInt, kDouble, kBool, kString };

  LogField(std::string_view key, uint64_t value)
      : key(key), kind(Kind::kUint), u(value) {}
  LogField(std::string_view key, int64_t value)
      : key(key), kind(Kind::kInt), i(value) {}
  LogField(std::string_view key, int value)
      : LogField(key, static_cast<int64_t>(value)) {}
  LogField(std::string_view key, unsigned value)
      : LogField(key, static_cast<uint64_t>(value)) {}
  LogField(std::string_view key, double value)
      : key(key), kind(Kind::kDouble), d(value) {}
  LogField(std::string_view key, bool value)
      : key(key), kind(Kind::kBool), b(value) {}
  LogField(std::string_view key, std::string_view value)
      : key(key), kind(Kind::kString), s(value) {}
  LogField(std::string_view key, const char* value)
      : LogField(key, std::string_view(value)) {}

  std::string_view key;
  Kind kind = Kind::kUint;
  uint64_t u = 0;
  int64_t i = 0;
  double d = 0;
  bool b = false;
  std::string_view s;
};

struct LoggerOptions {
  /// Records below this level are dropped before formatting.
  LogLevel min_level = LogLevel::kInfo;
  /// Microsecond timestamp source for the "ts_us" field. Null = the
  /// system wall clock. Tests inject a scripted clock for byte-stable
  /// output.
  std::function<int64_t()> clock;
};

class Logger {
 public:
  /// Logs to a borrowed stream (never closed); `sink` must outlive the
  /// Logger. The stderr constructor for CLI diagnostics.
  explicit Logger(std::FILE* sink, LoggerOptions options = {});
  ~Logger();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Opens `path` for appending and owns the stream (closed on
  /// destruction). IOError when the file cannot be opened.
  static Result<std::unique_ptr<Logger>> Open(const std::string& path,
                                              LoggerOptions options = {});

  /// Lock-free level check — the guard for callers that would do work
  /// just to build fields.
  bool ShouldLog(LogLevel level) const {
    return static_cast<int>(level) >=
           min_level_.load(std::memory_order_relaxed);
  }

  /// Emits one record:
  ///   {"ts_us":..,"seq":..,"level":"..","event":"..",<fields>}
  /// `event` must be a registered name (obs/stability.h). Suppressed
  /// levels return after the ShouldLog() load.
  void Log(LogLevel level, std::string_view event,
           std::initializer_list<LogField> fields = {})
      SSJOIN_EXCLUDES(mutex_) {
    Log(level, event, fields.begin(), fields.size());
  }

  /// Same, with a dynamically built field array (the heartbeat renders
  /// one field per live metric).
  void Log(LogLevel level, std::string_view event, const LogField* fields,
           size_t num_fields) SSJOIN_EXCLUDES(mutex_);

  /// Re-aims the level filter (thread-safe; takes effect immediately).
  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }

  /// Publishes per-level line counts as log.lines.<level> counters (and
  /// failed writes as log.write_errors). Not owned; nullptr detaches.
  void BindMetrics(MetricsRegistry* metrics) SSJOIN_EXCLUDES(mutex_);

  /// Records emitted (post-filter) since construction.
  uint64_t lines() const { return lines_.load(std::memory_order_relaxed); }

  void Flush() SSJOIN_EXCLUDES(mutex_);

 private:
  void WriteLine(const std::string& line) SSJOIN_REQUIRES(mutex_);

  std::atomic<int> min_level_;
  std::atomic<uint64_t> lines_{0};

  mutable util::Mutex mutex_;
  std::FILE* sink_ SSJOIN_GUARDED_BY(mutex_);
  bool owns_sink_ SSJOIN_GUARDED_BY(mutex_) = false;
  uint64_t seq_ SSJOIN_GUARDED_BY(mutex_) = 0;
  std::function<int64_t()> clock_ SSJOIN_GUARDED_BY(mutex_);
  /// Per-level emit counters + write-error counter, cached on
  /// BindMetrics so Log() never takes the registry mutex.
  Counter* level_counters_[4] SSJOIN_GUARDED_BY(mutex_) = {};
  Counter* write_errors_ SSJOIN_GUARDED_BY(mutex_) = nullptr;
};

/// Null-safe emission seam for instrumented code (core/spill/CLI): a
/// null logger costs one pointer compare, mirroring the Record* explain
/// seams.
inline void LogEvent(Logger* logger, LogLevel level, std::string_view event,
                     std::initializer_list<LogField> fields = {}) {
  if (logger != nullptr) logger->Log(level, event, fields);
}

}  // namespace ssjoin::obs
