// Hierarchical tracing spans for join execution.
//
// A Tracer records a tree of spans (join → phase → shard/chunk) with
// wall-clock intervals, attributes, and point events. It is the
// substrate behind the paper's Section 3.2 evaluation methodology made
// first-class: instead of ad-hoc per-phase timers, every driver opens
// spans through obs::JoinTelemetry and the exporters (obs/export.h)
// render the same recording as a deterministic JSONL stream, a Chrome
// trace_event file for about:tracing/Perfetto, or a human report.
//
// Thread-safety: all mutating calls serialize on one mutex. Spans are
// stored in creation order; control-thread (kStable) spans are created
// in a deterministic order by construction, worker-thread (kRuntime)
// spans may interleave arbitrarily — which is exactly why the
// deterministic exporters drop them (see obs/stability.h).
//
// Cost model: a null Tracer* at the instrumentation seams costs one
// branch and zero allocations (the JoinTelemetry wrappers never touch
// the Tracer when it is null); with a Tracer attached, each span costs
// one mutex acquisition plus one vector append.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/stability.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace ssjoin::obs {

/// Index-style span handle. 0 (kNoSpan) means "no span" — the parent of
/// a root span, or the result of instrumentation with no tracer.
using SpanId = uint32_t;
inline constexpr SpanId kNoSpan = 0;

/// A typed attribute value (JSON-representable).
struct AttrValue {
  enum class Kind { kUint, kDouble, kString };
  Kind kind = Kind::kUint;
  uint64_t u = 0;
  double d = 0;
  std::string s;

  static AttrValue Uint(uint64_t v);
  static AttrValue Double(double v);
  static AttrValue String(std::string_view v);
};

/// A point-in-time occurrence inside a span (e.g. a guard trip with its
/// cause). Events on kStable spans must carry deterministic payloads.
struct SpanEvent {
  std::string name;
  std::string detail;
  int64_t at_us = 0;  // relative to the tracer epoch
};

struct SpanRecord {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string name;
  Stability stability = Stability::kStable;
  /// Rendering lane for concurrent kRuntime spans (shard/chunk index);
  /// becomes the Chrome-trace tid so overlapping shards don't collide.
  uint32_t lane = 0;
  int64_t start_us = 0;
  int64_t end_us = -1;  // -1 while the span is open
  std::vector<std::pair<std::string, AttrValue>> attrs;
  std::vector<SpanEvent> events;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span under `parent` (kNoSpan = a root). Returns its handle.
  SpanId StartSpan(std::string_view name, SpanId parent = kNoSpan,
                   Stability stability = Stability::kStable,
                   uint32_t lane = 0) SSJOIN_EXCLUDES(mutex_);

  /// Closes the span. Open spans are exported with their start only.
  void EndSpan(SpanId id) SSJOIN_EXCLUDES(mutex_);

  /// Appends a point event to the span.
  void AddEvent(SpanId id, std::string_view name,
                std::string_view detail = {}) SSJOIN_EXCLUDES(mutex_);

  /// Sets (or overwrites) one attribute. Attribute order is insertion
  /// order, so control-thread instrumentation stays deterministic.
  void SetAttr(SpanId id, std::string_view key, uint64_t value)
      SSJOIN_EXCLUDES(mutex_);
  void SetAttr(SpanId id, std::string_view key, double value)
      SSJOIN_EXCLUDES(mutex_);
  void SetAttr(SpanId id, std::string_view key, std::string_view value)
      SSJOIN_EXCLUDES(mutex_);

  /// Copy of all spans in creation order (exporter input).
  std::vector<SpanRecord> Snapshot() const SSJOIN_EXCLUDES(mutex_);

  size_t span_count() const SSJOIN_EXCLUDES(mutex_);

  /// Drops every recorded span (the epoch is kept).
  void Reset() SSJOIN_EXCLUDES(mutex_);

 private:
  SpanRecord* Find(SpanId id) SSJOIN_REQUIRES(mutex_);
  void SetAttrValue(SpanId id, std::string_view key, AttrValue value)
      SSJOIN_EXCLUDES(mutex_);

  mutable util::Mutex mutex_;
  // Stopwatch reads are pure clock queries against a start point that is
  // fixed at construction (Restart() is never called on the epoch).
  Stopwatch epoch_;  // ssjoin-lint: allow(guarded-by-required)
  std::vector<SpanRecord> spans_ SSJOIN_GUARDED_BY(mutex_);
};

}  // namespace ssjoin::obs
