// Determinism taxonomy for observability data (DESIGN.md Section 8).
//
// The repo's parallel-execution contract promises byte-identical join
// output for every thread count. The observability layer extends that
// promise to telemetry: everything it exports in the deterministic
// formats (the JSONL trace/metrics files CI diffs) must also be
// byte-identical across thread counts and across repeated runs on the
// same input. Wall-clock readings and per-shard detail cannot satisfy
// that, so every span and metric carries a Stability class and the
// deterministic exporters emit only the kStable subset; the Chrome-trace
// and human-report exporters emit everything.

#pragma once

namespace ssjoin::obs {

enum class Stability {
  /// Identical for every thread count and every run on the same input:
  /// phase structure, signature/candidate/result totals, guard-trip
  /// causes from deterministic limits. Included in JSONL exports.
  kStable,
  /// Timing, per-shard/per-chunk breakdowns, thread-pool activity —
  /// anything that legitimately varies run to run. Excluded from the
  /// deterministic JSONL exports; visible in the Chrome trace and the
  /// human run report.
  kRuntime,
};

}  // namespace ssjoin::obs
