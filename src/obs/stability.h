// Determinism taxonomy for observability data (DESIGN.md Section 8).
//
// The repo's parallel-execution contract promises byte-identical join
// output for every thread count. The observability layer extends that
// promise to telemetry: everything it exports in the deterministic
// formats (the JSONL trace/metrics files CI diffs) must also be
// byte-identical across thread counts and across repeated runs on the
// same input. Wall-clock readings and per-shard detail cannot satisfy
// that, so every span and metric carries a Stability class and the
// deterministic exporters emit only the kStable subset; the Chrome-trace
// and human-report exporters emit everything.

#pragma once

#include <string_view>

namespace ssjoin::obs {

enum class Stability {
  /// Identical for every thread count and every run on the same input:
  /// phase structure, signature/candidate/result totals, guard-trip
  /// causes from deterministic limits. Included in JSONL exports.
  kStable,
  /// Timing, per-shard/per-chunk breakdowns, thread-pool activity —
  /// anything that legitimately varies run to run. Excluded from the
  /// deterministic JSONL exports; visible in the Chrome trace and the
  /// human run report.
  kRuntime,
};

// Registered telemetry names.
//
// Every span name, span-attribute key, span-event name, metric name, and
// explain-quantity name emitted from src/ must be registered here — the
// `telemetry-registry` rule in tools/lint/ssjoin_lint.py extracts the
// string literals below and rejects any src/ emission call whose name
// literal is not among them. One vocabulary file keeps exporters, the
// explain layer, and regression tooling (scripts/bench_compare.py keys
// on these names) agreeing on what exists, and makes a rename a visible,
// single-file event instead of a silent drift between emitters.
//
// Emission call sites may keep using plain string literals (the lint
// matches by value, not by constant), but new code is encouraged to use
// these constants.
namespace names {

// Span names.
inline constexpr std::string_view kSpanJoin = "join";
inline constexpr std::string_view kSpanSigGen = "SigGen";
inline constexpr std::string_view kSpanCandPair = "CandPair";
inline constexpr std::string_view kSpanPostFilter = "PostFilter";
inline constexpr std::string_view kSpanShard = "shard";
inline constexpr std::string_view kSpanVerifyChunk = "verify_chunk";
inline constexpr std::string_view kSpanBlock = "block";

// Span-attribute keys.
inline constexpr std::string_view kAttrMode = "mode";
inline constexpr std::string_view kAttrPlan = "plan";
inline constexpr std::string_view kAttrTrip = "trip";
inline constexpr std::string_view kAttrInputSets = "input_sets";
inline constexpr std::string_view kAttrInputSetsR = "input_sets_r";
inline constexpr std::string_view kAttrInputSetsS = "input_sets_s";
inline constexpr std::string_view kAttrSignatures = "signatures";
inline constexpr std::string_view kAttrSignaturesR = "signatures_r";
inline constexpr std::string_view kAttrSignaturesS = "signatures_s";
inline constexpr std::string_view kAttrSignatureCollisions =
    "signature_collisions";
inline constexpr std::string_view kAttrCandidates = "candidates";
inline constexpr std::string_view kAttrResults = "results";
inline constexpr std::string_view kAttrFalsePositives = "false_positives";
inline constexpr std::string_view kAttrBitmapFilterChecked =
    "bitmap_filter_checked";
inline constexpr std::string_view kAttrBitmapFilterPruned =
    "bitmap_filter_pruned";
inline constexpr std::string_view kAttrRows = "rows";
// Out-of-core execution (core/spill, DESIGN.md Section 12). "spill"
// records how the spilled path was entered ("forced" / "auto"); the
// counters are functions of the input and spill configuration, so all
// are kStable.
inline constexpr std::string_view kAttrSpill = "spill";
inline constexpr std::string_view kAttrSpillPartitions = "spill_partitions";
inline constexpr std::string_view kAttrSpillRetries = "spill_retries";

// Span events.
inline constexpr std::string_view kEventGuardTrip = "guard_trip";

// Metric names.
inline constexpr std::string_view kJoinRuns = "join.runs";
inline constexpr std::string_view kJoinSignatures = "join.signatures";
inline constexpr std::string_view kJoinSignatureCollisions =
    "join.signature_collisions";
inline constexpr std::string_view kJoinCandidates = "join.candidates";
inline constexpr std::string_view kJoinResults = "join.results";
inline constexpr std::string_view kJoinFalsePositives =
    "join.false_positives";
inline constexpr std::string_view kJoinCandidateDedupRatio =
    "join.candidate_dedup_ratio";
// Bitmap pre-filter effectiveness (core/kernels/bitmap_filter.h):
// counters and the derived prune rate are all functions of JoinStats, so
// they are kStable.
inline constexpr std::string_view kJoinBitmapFilterChecked =
    "join.bitmap_filter_checked";
inline constexpr std::string_view kJoinBitmapFilterPruned =
    "join.bitmap_filter_pruned";
inline constexpr std::string_view kJoinBitmapPruneRate =
    "join.bitmap_prune_rate";
// IntersectSize dispatch counts (core/kernels/intersect.h): which kernel
// — scalar, galloping, or the SIMD block compare — verification chose
// per pair. CPU- and build-dependent, hence kRuntime only.
inline constexpr std::string_view kJoinIntersectScalar =
    "join.intersect.scalar";
inline constexpr std::string_view kJoinIntersectGalloping =
    "join.intersect.galloping";
inline constexpr std::string_view kJoinIntersectSimd =
    "join.intersect.simd";
inline constexpr std::string_view kJoinSecondsTotal = "join.seconds.total";
inline constexpr std::string_view kJoinShardCandidates =
    "join.shard.candidates";
inline constexpr std::string_view kJoinShardMicros = "join.shard.micros";
inline constexpr std::string_view kJoinVerifyChunkMicros =
    "join.verify.chunk_micros";
inline constexpr std::string_view kJoinPipelineBlockMicros =
    "join.pipeline.block_micros";
// Spill accounting (emitted only when a join actually spilled): the
// counters are deterministic for a fixed input + spill configuration.
inline constexpr std::string_view kJoinSpillPartitions =
    "join.spill.partitions";
inline constexpr std::string_view kJoinSpillBytesWritten =
    "join.spill.bytes_written";
inline constexpr std::string_view kJoinSpillBytesRead =
    "join.spill.bytes_read";
inline constexpr std::string_view kJoinSpillRetries = "join.spill.retries";
inline constexpr std::string_view kDbmsRowsSignature = "dbms.rows.signature";
inline constexpr std::string_view kDbmsRowsCandPair = "dbms.rows.candpair";
inline constexpr std::string_view kDbmsRowsOutput = "dbms.rows.output";
/// Dynamic family: "guard.trips." + TripReasonName(reason). The prefix
/// is the registered name; the lint accepts the prefix literal at the
/// construction site.
inline constexpr std::string_view kGuardTripsPrefix = "guard.trips.";
inline constexpr std::string_view kThreadpoolForkjoins =
    "threadpool.forkjoins";
inline constexpr std::string_view kThreadpoolSize = "threadpool.size";

// Per-operator pipeline metrics (core/pipeline + obs/join_telemetry's
// OpInstrument). Dynamic family: "pipeline." + <op tag> + suffix, e.g.
// "pipeline.verify.rows_out". The prefix is the registered name; the
// lint accepts the prefix literal at the construction site. Row totals
// (.rows_in/.rows_out) are functions of the input and plan, hence
// kStable and exactly equal at any thread count / spill mode; batch
// counts and self-time (.batches/.ns) depend on batch granularity and
// the wall clock, hence kRuntime.
inline constexpr std::string_view kPipelinePrefix = "pipeline.";
inline constexpr std::string_view kPipelineSuffixBatches = ".batches";
inline constexpr std::string_view kPipelineSuffixRowsIn = ".rows_in";
inline constexpr std::string_view kPipelineSuffixRowsOut = ".rows_out";
inline constexpr std::string_view kPipelineSuffixNs = ".ns";
// Operator metric tags (the <op> component). Tags are stable lowercase
// identifiers, distinct from the human-facing operator names that the
// EXPLAIN plan prints.
inline constexpr std::string_view kOpSigGen = "siggen";
inline constexpr std::string_view kOpCandGen = "candgen";
inline constexpr std::string_view kOpPipelinedScan = "pipelined_scan";
inline constexpr std::string_view kOpBitmapFilter = "bitmap_filter";
inline constexpr std::string_view kOpVerify = "verify";
inline constexpr std::string_view kOpDedupEmit = "dedup_emit";
inline constexpr std::string_view kOpSpillPartition = "spill_partition";

// Structured-log accounting (obs/log.h). Line counts depend on pacing
// and interleaving — kRuntime only.
inline constexpr std::string_view kLogLinesDebug = "log.lines.debug";
inline constexpr std::string_view kLogLinesInfo = "log.lines.info";
inline constexpr std::string_view kLogLinesWarn = "log.lines.warn";
inline constexpr std::string_view kLogLinesError = "log.lines.error";
inline constexpr std::string_view kLogWriteErrors = "log.write_errors";

// Progress heartbeat (obs/progress.h): beats taken by the background
// thread and synchronous DumpNow()/signal dumps. Wall-clock paced —
// kRuntime only.
inline constexpr std::string_view kProgressBeats = "progress.beats";
inline constexpr std::string_view kProgressDumps = "progress.dumps";

// Structured-log event names (obs/log.h Log()/LogEvent() call sites —
// the telemetry-registry lint checks these like span/metric names).
inline constexpr std::string_view kLogEventJoinStart = "join_start";
inline constexpr std::string_view kLogEventJoinFinish = "join_finish";
inline constexpr std::string_view kLogEventJoinAbort = "join_abort";
inline constexpr std::string_view kLogEventSpillDegrade = "spill_degrade";
inline constexpr std::string_view kLogEventSpillRetry = "spill_retry";
inline constexpr std::string_view kLogEventApproxAlgo = "approximate_algo";
inline constexpr std::string_view kLogEventProgress = "progress";

// Explain-quantity names (drift accounting, obs/explain.h). The join.*
// quantities above double as drift names; kJoinF2 is explain-only: the
// Section 3.2 intermediate-result size the advisor predicts.
inline constexpr std::string_view kJoinF2 = "join.f2";

// Explain parameter keys recorded by the drivers and front ends.
inline constexpr std::string_view kParamGamma = "gamma";
inline constexpr std::string_view kParamK = "k";
inline constexpr std::string_view kParamN1 = "n1";
inline constexpr std::string_view kParamN2 = "n2";
inline constexpr std::string_view kParamAlgo = "algo";
inline constexpr std::string_view kParamInput = "input";
inline constexpr std::string_view kParamBitmapBits = "bitmap_bits";
// Spill configuration of the run (core/spill): entry cause and the
// partition count the attempt started from.
inline constexpr std::string_view kParamSpill = "spill";
inline constexpr std::string_view kParamSpillPartitions = "spill_partitions";
// Note: there is deliberately no "threads" param — explain params are
// exported in the stable JSONL, which must be byte-identical across
// thread counts. Thread count is runtime detail (the human report).

}  // namespace names

}  // namespace ssjoin::obs
