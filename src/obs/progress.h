// Progress heartbeat: periodic JSONL snapshots of a live run
// (DESIGN.md Section 14).
//
// A ProgressReporter owns one background thread that every
// `interval_ms` emits a "progress" log record through a Logger: the
// current values of every metric in a MetricsRegistry (counters and
// gauges by value, histograms by count) plus, when an ExecutionGuard is
// attached, the live budget readings — elapsed seconds, current phase,
// memory/disk charge and high-water marks, and the trip flag. Long
// out-of-core joins become observable while they run instead of only
// post-mortem.
//
// Contracts:
//
//   * Purely an observer: beats read atomics (registry snapshot, guard
//     accessors) and never touch join state, so a heartbeat cannot
//     perturb results (the determinism contract is untouched — progress
//     records go to the log stream, never to the deterministic JSONL
//     exports).
//   * Stop() (and the destructor) joins the thread — no detached
//     threads, per the concurrency discipline (DESIGN.md Section 10).
//     Stop is prompt: the sleeper wakes on notify, not on timeout.
//   * DumpNow() takes a beat synchronously on the calling thread, at
//     any time between construction and destruction — including while
//     the background thread runs.
//   * RequestDump() is async-signal-safe (one relaxed atomic store): it
//     schedules an extra beat on the background thread. The CLI hooks
//     it to SIGUSR1 via InstallSignalTarget().
//
// A reporter built with a null logger is inert: Start()/DumpNow() are
// no-ops, preserving the null-sink contract.

#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "obs/log.h"
#include "util/thread_annotations.h"

namespace ssjoin {
class ExecutionGuard;
}  // namespace ssjoin

namespace ssjoin::obs {

class MetricsRegistry;
class Counter;

class ProgressReporter {
 public:
  /// None of the pointers are owned; all may be null (`logger` null
  /// makes the reporter inert, `metrics`/`guard` null just omit their
  /// fields). `interval_ms` <= 0 disables the background thread but
  /// DumpNow() still works.
  ProgressReporter(Logger* logger, MetricsRegistry* metrics,
                   const ExecutionGuard* guard, int64_t interval_ms);
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Launches the heartbeat thread (no-op when inert, already running,
  /// or interval_ms <= 0). Idempotent.
  void Start() SSJOIN_EXCLUDES(mutex_);

  /// Stops and joins the heartbeat thread. Idempotent; called by the
  /// destructor. Safe on every exit path — error, guard trip, success.
  void Stop() SSJOIN_EXCLUDES(mutex_);

  /// Emits one progress record synchronously on the calling thread.
  /// Thread-safe against the background thread and other callers.
  void DumpNow();

  /// Schedules an extra beat on the background thread. Async-signal-safe
  /// (single relaxed atomic store; the beat itself happens on the
  /// heartbeat thread, which wakes within one sleep slice).
  void RequestDump() { dump_requested_.store(1, std::memory_order_relaxed); }

  /// Beats emitted so far (background + DumpNow).
  uint64_t beats() const { return beats_.load(std::memory_order_relaxed); }

  /// Registers `reporter` (or clears with nullptr) as the process-wide
  /// signal target; NotifySignalTarget() then forwards to its
  /// RequestDump(). Both functions are async-signal-safe; the CLI's
  /// SIGUSR1 handler is just `NotifySignalTarget()`.
  static void InstallSignalTarget(ProgressReporter* reporter);
  static void NotifySignalTarget();

 private:
  void HeartbeatLoop() SSJOIN_EXCLUDES(mutex_);
  void Beat(bool requested);

  Logger* const logger_;                   // null => inert
  MetricsRegistry* const metrics_;         // may be null
  const ExecutionGuard* const guard_;      // may be null
  const int64_t interval_ms_;

  // Written by RequestDump (possibly from a signal handler), consumed by
  // the heartbeat thread; lock-free by design.
  std::atomic<int> dump_requested_{0};  // ssjoin-lint: allow(guarded-by-required)
  std::atomic<uint64_t> beats_{0};      // ssjoin-lint: allow(guarded-by-required)
  // Registered once before Start() from the owning thread; the beat
  // path only reads them (Counter is internally atomic).
  Counter* beats_counter_ = nullptr;  // ssjoin-lint: allow(guarded-by-required)
  Counter* dumps_counter_ = nullptr;  // ssjoin-lint: allow(guarded-by-required)

  util::Mutex mutex_;
  util::CondVar wake_;
  bool stop_requested_ SSJOIN_GUARDED_BY(mutex_) = false;
  bool running_ SSJOIN_GUARDED_BY(mutex_) = false;
  // A raw std::thread rather than util::ThreadPool on purpose: the pool
  // is a fork-join primitive, while the heartbeat is one long-lived
  // thread whose lifetime Stop()/~ProgressReporter manage explicitly —
  // the handle is only touched from Start()/Stop() under mutex_ (join
  // happens after releasing it, once running_ says the thread exists).
  std::thread thread_ SSJOIN_GUARDED_BY(mutex_);  // ssjoin-lint: allow(no-unjoined-thread)
};

}  // namespace ssjoin::obs
