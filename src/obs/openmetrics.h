// OpenMetrics text exposition of MetricsRegistry snapshots
// (DESIGN.md Section 14).
//
// Renders counters, gauges, and histograms in the OpenMetrics 1.0 text
// format so a Prometheus-compatible scraper (or the future ssjoin
// server's /metrics endpoint, ROADMAP item 1) consumes run telemetry
// without new plumbing. The rendering is deterministic for a fixed
// snapshot: names come out of Snapshot() sorted, numbers use the repo's
// canonical formatting, and nothing wall-clock is added — determinism of
// the *values* is still governed by each metric's Stability class.
//
// Mapping from the internal model:
//
//   * Metric names are prefixed "ssjoin_" and sanitized (every character
//     outside [a-zA-Z0-9_] becomes '_'), so "join.spill.bytes_written"
//     exposes as "ssjoin_join_spill_bytes_written".
//   * Counter  -> `# TYPE ... counter` with a `_total` sample.
//   * Gauge    -> `# TYPE ... gauge` with a bare sample.
//   * Histogram-> `# TYPE ... histogram`: cumulative `_bucket{le="..."}`
//     samples at the power-of-two bucket upper bounds
//     (HistogramBucketUpperBound), a closing `le="+Inf"` bucket, then
//     `_sum` and `_count`.
//   * The `# HELP` line carries the original dotted name and the
//     stability class, and the exposition ends with `# EOF`.
//
// scripts/check_openmetrics.py validates this grammar from ctest; the
// golden test (tests/obs/openmetrics_test.cc) pins the exact bytes.

#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace ssjoin::obs {

/// Renders a snapshot (as produced by MetricsRegistry::Snapshot(),
/// name-sorted) as OpenMetrics text, terminated by "# EOF\n".
std::string OpenMetricsText(const std::vector<MetricRecord>& records);

/// Convenience over a live registry.
std::string OpenMetricsText(const MetricsRegistry& metrics);

/// Writes the exposition for `metrics` to `path` (the CLI's
/// --metrics-format=openmetrics sink).
Status WriteOpenMetrics(const MetricsRegistry& metrics,
                        const std::string& path);

}  // namespace ssjoin::obs
