#include "data/loader.h"

#include <charconv>
#include <fstream>
#include <sstream>

namespace ssjoin {

Result<std::vector<std::string>> LoadStrings(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<std::string> out;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    out.push_back(line);
  }
  return out;
}

Status SaveStrings(const std::string& path,
                   const std::vector<std::string>& strings) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (const std::string& s : strings) out << s << '\n';
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<SetCollection> LoadSets(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  SetCollectionBuilder builder;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::vector<ElementId> elements;
    std::istringstream ls(line);
    std::string token;
    while (ls >> token) {
      ElementId value = 0;
      auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec != std::errc() || ptr != token.data() + token.size()) {
        return Status::InvalidArgument("non-numeric element '" + token +
                                       "' at " + path + ":" +
                                       std::to_string(line_no));
      }
      elements.push_back(value);
    }
    builder.Add(std::move(elements));
  }
  return builder.Build();
}

Status SaveSets(const std::string& path, const SetCollection& collection) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (SetId id = 0; id < collection.size(); ++id) {
    bool first = true;
    for (ElementId e : collection.set(id)) {
      if (!first) out << ' ';
      out << e;
      first = false;
    }
    out << '\n';
  }
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

}  // namespace ssjoin
