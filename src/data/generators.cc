#include "data/generators.h"

#include <algorithm>
#include <array>
#include <unordered_set>

#include "util/check.h"
#include "util/zipf.h"

namespace ssjoin {

SetCollection GenerateUniformSets(const UniformSetOptions& options) {
  SSJOIN_CHECK(options.set_size <= options.domain_size,
               "cannot draw {} distinct elements from a domain of {}",
               options.set_size, options.domain_size);
  Rng rng(options.seed);
  std::vector<std::vector<ElementId>> sets;
  sets.reserve(options.num_sets);
  for (size_t i = 0; i < options.num_sets; ++i) {
    std::vector<uint32_t> s =
        SampleWithoutReplacement(options.domain_size, options.set_size, rng);
    sets.push_back(std::move(s));
  }
  // Planted near-duplicates: copy a base set and replace `mutations`
  // members with fresh elements not already present.
  size_t num_planted =
      static_cast<size_t>(options.similar_fraction *
                          static_cast<double>(options.num_sets));
  for (size_t i = 0; i < num_planted && !sets.empty(); ++i) {
    const std::vector<ElementId>& base =
        sets[rng.Uniform(static_cast<uint32_t>(options.num_sets))];
    std::vector<ElementId> dup = base;
    std::unordered_set<ElementId> members(dup.begin(), dup.end());
    uint32_t mutations = std::min<uint32_t>(
        options.mutations, static_cast<uint32_t>(dup.size()));
    for (uint32_t m = 0; m < mutations; ++m) {
      uint32_t victim = rng.Uniform(static_cast<uint32_t>(dup.size()));
      ElementId replacement = rng.Uniform(options.domain_size);
      while (members.count(replacement) > 0) {
        replacement = rng.Uniform(options.domain_size);
      }
      members.erase(dup[victim]);
      members.insert(replacement);
      dup[victim] = replacement;
    }
    sets.push_back(std::move(dup));
  }
  return SetCollection::FromVectors(sets);
}

std::string InjectTypos(const std::string& text, uint32_t count, Rng& rng) {
  std::string out = text;
  for (uint32_t i = 0; i < count; ++i) {
    if (out.empty()) {
      out.push_back(static_cast<char>('a' + rng.Uniform(26)));
      continue;
    }
    uint32_t pos = rng.Uniform(static_cast<uint32_t>(out.size()));
    char random_char = static_cast<char>('a' + rng.Uniform(26));
    switch (static_cast<TypoKind>(rng.Uniform(4))) {
      case TypoKind::kSubstitute:
        out[pos] = random_char;
        break;
      case TypoKind::kInsert:
        out.insert(out.begin() + pos, random_char);
        break;
      case TypoKind::kDelete:
        if (out.size() > 1) out.erase(out.begin() + pos);
        break;
      case TypoKind::kTranspose:
        if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
        break;
    }
  }
  return out;
}

namespace {

// Small curated vocabularies; combined with numeric components and Zipf
// skew they produce realistic token-frequency distributions.
constexpr std::array<const char*, 24> kOrgWords = {
    "acme",   "global",  "united", "pacific", "summit", "pioneer",
    "cascade", "evergreen", "northwest", "harbor", "capital", "liberty",
    "prime",  "vertex",  "apex",   "fusion",  "orbit",  "quantum",
    "stellar", "metro",  "coastal", "alpine",  "desert", "valley"};

constexpr std::array<const char*, 12> kOrgSuffix = {
    "inc", "llc", "corp", "co", "ltd", "group",
    "partners", "systems", "services", "labs", "works", "holdings"};

constexpr std::array<const char*, 40> kStreetNames = {
    "main",     "oak",     "pine",    "maple",   "cedar",   "elm",
    "washington", "lake",  "hill",    "park",    "river",   "sunset",
    "highland", "forest",  "meadow",  "spring",  "church",  "mill",
    "walnut",   "chestnut", "spruce", "willow",  "birch",   "ridge",
    "valley",   "prairie", "garden",  "orchard", "harbor",  "bay",
    "canyon",   "mesa",    "union",   "franklin", "jefferson", "madison",
    "lincoln",  "monroe",  "jackson", "adams"};

constexpr std::array<const char*, 8> kStreetSuffix = {
    "st", "ave", "blvd", "rd", "ln", "dr", "way", "ct"};

constexpr std::array<const char*, 32> kCities = {
    "seattle",   "portland",  "spokane",   "tacoma",    "bellevue",
    "redmond",   "olympia",   "eugene",    "salem",     "boise",
    "sacramento", "fresno",   "oakland",   "pasadena",  "berkeley",
    "anaheim",   "glendale",  "burbank",   "torrance",  "fullerton",
    "everett",   "renton",    "kirkland",  "bothell",   "issaquah",
    "tucson",    "mesa",      "tempe",     "chandler",  "gilbert",
    "peoria",    "surprise"};

constexpr std::array<const char*, 10> kStates = {
    "wa", "or", "ca", "az", "nv", "id", "ut", "co", "nm", "tx"};

constexpr std::array<const char*, 60> kTitleWords = {
    "efficient", "scalable", "adaptive", "distributed", "parallel",
    "incremental", "approximate", "exact", "robust", "optimal",
    "query", "index", "join", "search", "stream", "graph", "cache",
    "storage", "transaction", "schema", "cluster", "sample", "sketch",
    "filter", "hash", "tree", "learning", "mining", "cleaning",
    "integration", "processing", "evaluation", "optimization",
    "estimation", "detection", "analysis", "similarity", "duplicate",
    "entity", "record", "linkage", "string", "set", "vector", "relation",
    "database", "warehouse", "workload", "benchmark", "algorithm",
    "framework", "system", "engine", "operator", "semantics", "model",
    "theory", "bounds", "guarantee", "performance"};

constexpr std::array<const char*, 48> kSurnames = {
    "smith",   "johnson", "williams", "brown",   "jones",   "garcia",
    "miller",  "davis",   "rodriguez", "martinez", "hernandez", "lopez",
    "gonzalez", "wilson", "anderson", "thomas",  "taylor",  "moore",
    "jackson", "martin",  "lee",      "perez",   "thompson", "white",
    "harris",  "sanchez", "clark",    "ramirez", "lewis",   "robinson",
    "walker",  "young",   "allen",    "king",    "wright",  "scott",
    "torres",  "nguyen",  "hill",     "flores",  "green",   "adams",
    "nelson",  "baker",   "hall",     "rivera",  "campbell", "mitchell"};

std::string MakeAddress(Rng& rng, const ZipfSampler& street_zipf,
                        const ZipfSampler& city_zipf) {
  std::string s;
  s += kOrgWords[rng.Uniform(kOrgWords.size())];
  s += ' ';
  s += kOrgWords[rng.Uniform(kOrgWords.size())];
  s += ' ';
  s += kOrgSuffix[rng.Uniform(kOrgSuffix.size())];
  s += ' ';
  // Bounded numeric vocabularies: a real metro-area address corpus reuses
  // street numbers and zip codes heavily regardless of corpus size, which
  // is what gives frequency-ordered schemes (prefix filter) their
  // characteristic collision growth.
  s += std::to_string(100 + rng.Uniform(1900));  // street number
  s += ' ';
  s += kStreetNames[street_zipf.Sample(rng) % kStreetNames.size()];
  s += ' ';
  s += kStreetSuffix[rng.Uniform(kStreetSuffix.size())];
  if (rng.Bernoulli(0.3)) {
    s += " suite ";
    s += std::to_string(1 + rng.Uniform(999));
  }
  s += ' ';
  s += kCities[city_zipf.Sample(rng) % kCities.size()];
  s += ' ';
  s += kStates[rng.Uniform(kStates.size())];
  s += ' ';
  s += std::to_string(98000 + rng.Uniform(1000));  // zip
  return s;
}

std::string MakeDblp(Rng& rng, const ZipfSampler& word_zipf) {
  std::string s;
  uint32_t num_authors = 1 + rng.Uniform(3);
  for (uint32_t i = 0; i < num_authors; ++i) {
    s += static_cast<char>('a' + rng.Uniform(26));  // first initial
    s += ' ';
    s += kSurnames[rng.Uniform(kSurnames.size())];
    s += ' ';
  }
  uint32_t title_len = 6 + rng.Uniform(8);  // 6..13 title words
  for (uint32_t i = 0; i < title_len; ++i) {
    s += kTitleWords[word_zipf.Sample(rng) % kTitleWords.size()];
    if (i + 1 < title_len) s += ' ';
  }
  return s;
}

template <typename MakeFn>
std::vector<std::string> GenerateStrings(size_t n, double dup_fraction,
                                         uint32_t max_typos, uint64_t seed,
                                         MakeFn make) {
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    bool dup = !out.empty() && rng.NextDouble() < dup_fraction;
    if (dup) {
      const std::string& base =
          out[rng.Uniform(static_cast<uint32_t>(out.size()))];
      out.push_back(InjectTypos(base, 1 + rng.Uniform(max_typos), rng));
    } else {
      out.push_back(make(rng));
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> GenerateAddressStrings(
    const AddressOptions& options) {
  ZipfSampler street_zipf(kStreetNames.size(), options.skew);
  ZipfSampler city_zipf(kCities.size(), options.skew);
  return GenerateStrings(
      options.num_strings, options.duplicate_fraction, options.max_typos,
      options.seed,
      [&](Rng& rng) { return MakeAddress(rng, street_zipf, city_zipf); });
}

std::vector<std::string> GenerateDblpStrings(const DblpOptions& options) {
  ZipfSampler word_zipf(kTitleWords.size(), options.skew);
  return GenerateStrings(options.num_strings, options.duplicate_fraction,
                         options.max_typos, options.seed,
                         [&](Rng& rng) { return MakeDblp(rng, word_zipf); });
}

}  // namespace ssjoin
