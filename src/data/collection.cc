#include "data/collection.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"
#include "util/hashing.h"
#include "util/random.h"

namespace ssjoin {

ElementId SetCollection::max_element() const {
  ElementId max_e = 0;
  for (ElementId e : elements_) max_e = std::max(max_e, e);
  return max_e;
}

uint32_t SetCollection::max_set_size() const {
  uint32_t m = 0;
  for (SetId id = 0; id < size(); ++id) m = std::max(m, set_size(id));
  return m;
}

uint32_t SetCollection::min_set_size() const {
  if (empty()) return 0;
  uint32_t m = set_size(0);
  for (SetId id = 1; id < size(); ++id) m = std::min(m, set_size(id));
  return m;
}

SetCollection SetCollection::FromVectors(
    const std::vector<std::vector<ElementId>>& sets) {
  SetCollectionBuilder builder;
  for (const auto& s : sets) builder.Add(s);
  return builder.Build();
}

SetCollection SetCollection::Sample(size_t k, uint64_t seed) const {
  if (k >= size()) return *this;
  Rng rng(seed);
  std::vector<uint32_t> ids =
      SampleWithoutReplacement(static_cast<uint32_t>(size()),
                               static_cast<uint32_t>(k), rng);
  SetCollectionBuilder builder;
  for (uint32_t id : ids) builder.Add(set(id));
  return builder.Build();
}

SetId SetCollectionBuilder::Add(std::vector<ElementId> elements) {
  std::sort(elements.begin(), elements.end());
  elements.erase(std::unique(elements.begin(), elements.end()),
                 elements.end());
  collection_.elements_.insert(collection_.elements_.end(), elements.begin(),
                               elements.end());
  collection_.offsets_.push_back(collection_.elements_.size());
  return static_cast<SetId>(collection_.size() - 1);
}

SetId SetCollectionBuilder::AddBag(std::span<const ElementId> elements) {
  // Re-encode the j-th occurrence of e as hash(e, j) so multiplicity
  // survives set semantics. The encoding is consistent across sets, so
  // bag-symmetric-difference equals set-symmetric-difference of the
  // encodings (up to negligible hash collisions, which can only shrink the
  // apparent distance and therefore never lose candidates).
  std::unordered_map<ElementId, uint32_t> occurrence;
  occurrence.reserve(elements.size());
  std::vector<ElementId> encoded;
  encoded.reserve(elements.size());
  for (ElementId e : elements) {
    uint32_t j = occurrence[e]++;
    uint64_t h = HashCombine(Mix64(e), j);
    encoded.push_back(static_cast<ElementId>(h ^ (h >> 32)));
  }
  return Add(std::move(encoded));
}

SetCollection SetCollectionBuilder::Build() {
  SetCollection out = std::move(collection_);
  collection_ = SetCollection();
  return out;
}

CollectionStats ComputeStats(const SetCollection& collection) {
  CollectionStats stats;
  stats.num_sets = collection.size();
  stats.total_elements = collection.total_elements();
  stats.avg_set_size = collection.average_set_size();
  stats.min_set_size = collection.min_set_size();
  stats.max_set_size = collection.max_set_size();
  std::unordered_set<ElementId> distinct;
  for (SetId id = 0; id < collection.size(); ++id) {
    for (ElementId e : collection.set(id)) distinct.insert(e);
  }
  stats.distinct_elements = distinct.size();
  return stats;
}

std::string ToString(const CollectionStats& stats) {
  std::ostringstream os;
  os << "sets=" << stats.num_sets << " elements=" << stats.total_elements
     << " avg_size=" << stats.avg_set_size << " min=" << stats.min_set_size
     << " max=" << stats.max_set_size
     << " distinct=" << stats.distinct_elements;
  return os.str();
}

}  // namespace ssjoin
