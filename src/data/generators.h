// Synthetic dataset generators reproducing the paper's three workloads.
//
// 1. UniformSetGenerator — the paper's synthetic jaccard workload
//    (Section 8.1, "Experiments on synthetic data sets"): equi-sized sets
//    (50 elements) drawn uniformly from a 10000-element domain, plus "a
//    few additional sets highly similar to existing ones to generate valid
//    output" (data generation "similar to the one used in [8]").
// 2. AddressGenerator — a stand-in for the proprietary 1M-string address
//    dataset: organization + street address + city + state + zip strings
//    with average length ~58 and average token-set size ~11, with
//    controlled injection of near-duplicates (typos).
// 3. DblpGenerator — a stand-in for DBLP: authors + title strings with
//    average token-set size ~14.
//
// The real datasets are unavailable (proprietary / not shipped), so these
// generators reproduce the *distributional properties the algorithms are
// sensitive to*: set-size distribution, element-frequency skew, and the
// density of truly-similar pairs. See DESIGN.md Section 1.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/collection.h"
#include "util/random.h"

namespace ssjoin {

/// Options for the paper's synthetic equi-sized set workload.
struct UniformSetOptions {
  size_t num_sets = 10000;
  uint32_t set_size = 50;       // paper: 50 elements per set
  uint32_t domain_size = 10000; // paper: domain of 10000 elements
  /// Fraction of additional near-duplicate sets appended (each is a copy
  /// of a random base set with `mutations` elements replaced).
  double similar_fraction = 0.05;
  /// Elements replaced in each planted near-duplicate. With set_size=50,
  /// 2 mutations gives jaccard ~ 48/52 ≈ 0.92, 5 gives ~ 45/55 ≈ 0.82.
  uint32_t mutations = 2;
  uint64_t seed = 42;
};

/// Generates the synthetic workload. The returned collection has
/// num_sets * (1 + similar_fraction) sets (planted duplicates at the end).
SetCollection GenerateUniformSets(const UniformSetOptions& options);

/// Character-level typo kinds used for near-duplicate string injection.
enum class TypoKind { kSubstitute, kInsert, kDelete, kTranspose };

/// Applies `count` random typos to `text` (never leaves it empty).
std::string InjectTypos(const std::string& text, uint32_t count, Rng& rng);

/// Options for address-like string generation.
struct AddressOptions {
  size_t num_strings = 10000;
  /// Fraction of strings that are near-duplicates of an earlier string.
  double duplicate_fraction = 0.1;
  /// Typos per injected duplicate (1..max_typos uniformly).
  uint32_t max_typos = 3;
  /// Skew of the city/street-name vocabularies (Zipf theta).
  double skew = 0.8;
  uint64_t seed = 7;
};

/// Generates address-like strings ("org number street suffix city state
/// zip"), average length ~58 characters, ~11 whitespace tokens.
std::vector<std::string> GenerateAddressStrings(const AddressOptions& options);

/// Options for DBLP-like bibliographic string generation.
struct DblpOptions {
  size_t num_strings = 10000;
  double duplicate_fraction = 0.08;
  uint32_t max_typos = 2;
  /// Zipf skew of the title-word vocabulary.
  double skew = 1.0;
  uint64_t seed = 11;
};

/// Generates bibliographic strings ("author author title words ..."),
/// ~14 whitespace tokens on average.
std::vector<std::string> GenerateDblpStrings(const DblpOptions& options);

}  // namespace ssjoin
