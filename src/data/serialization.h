// Binary serialization of set collections.
//
// Text set files (data/loader.h) are convenient but slow to parse at
// million-set scale; the benches and CLI use this compact binary format
// for cached datasets:
//
//   [magic "SSJC"] [u32 version=1] [u64 num_sets]
//   [u64 offsets[num_sets+1]] [u32 elements[total]]
//
// Little-endian, no compression. Load validates the header, monotone
// offsets, and per-set sortedness, so a corrupted file fails cleanly
// instead of producing garbage joins.

#pragma once

#include <string>

#include "data/collection.h"
#include "util/status.h"

namespace ssjoin {

/// Writes `collection` to `path` in the binary format above.
Status SaveSetsBinary(const std::string& path,
                      const SetCollection& collection);

/// Reads a collection written by SaveSetsBinary. Validates structure.
Result<SetCollection> LoadSetsBinary(const std::string& path);

}  // namespace ssjoin
