#include "data/serialization.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

namespace ssjoin {

namespace {
constexpr char kMagic[4] = {'S', 'S', 'J', 'C'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}
}  // namespace

Status SaveSetsBinary(const std::string& path,
                      const SetCollection& collection) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  uint64_t num_sets = collection.size();
  WritePod(out, num_sets);
  uint64_t offset = 0;
  WritePod(out, offset);
  for (SetId id = 0; id < collection.size(); ++id) {
    offset += collection.set_size(id);
    WritePod(out, offset);
  }
  for (SetId id = 0; id < collection.size(); ++id) {
    std::span<const ElementId> set = collection.set(id);
    out.write(reinterpret_cast<const char*>(set.data()),
              static_cast<std::streamsize>(set.size() * sizeof(ElementId)));
  }
  out.close();
  if (!out) {
    // Don't leave a truncated file behind: a later LoadSetsBinary would
    // reject it, but the half-written artifact wastes the disk whose
    // exhaustion likely caused the failure in the first place.
    std::remove(path.c_str());  // ssjoin-lint: allow(no-unchecked-io)
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Result<SetCollection> LoadSetsBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  // Sizes in the header are untrusted until cross-checked against the
  // actual file size: a corrupt count must produce a Status, never a
  // multi-gigabyte allocation (bad_alloc / OOM kill).
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not an ssjoin binary file");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::InvalidArgument(path + ": unsupported version " +
                                   std::to_string(version));
  }
  uint64_t num_sets = 0;
  if (!ReadPod(in, &num_sets)) {
    return Status::InvalidArgument(path + ": truncated header");
  }
  const uint64_t header_bytes =
      sizeof(kMagic) + sizeof(kVersion) + sizeof(num_sets);
  // num_sets + 1 offsets of 8 bytes each must fit in what follows the
  // header (this also rules out num_sets + 1 overflowing).
  if (num_sets >= (file_size - header_bytes) / sizeof(uint64_t)) {
    return Status::InvalidArgument(
        path + ": header claims " + std::to_string(num_sets) +
        " sets, more than the " + std::to_string(file_size) +
        "-byte file can hold");
  }
  std::vector<uint64_t> offsets(num_sets + 1);
  for (uint64_t& o : offsets) {
    if (!ReadPod(in, &o)) {
      return Status::InvalidArgument(path + ": truncated offsets");
    }
  }
  if (offsets[0] != 0) {
    return Status::InvalidArgument(path + ": offsets must start at 0");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::InvalidArgument(path + ": offsets not monotone");
    }
  }
  uint64_t total = offsets.back();
  const uint64_t elements_pos =
      header_bytes + (num_sets + 1) * sizeof(uint64_t);
  if (total != (file_size - elements_pos) / sizeof(ElementId) ||
      elements_pos + total * sizeof(ElementId) != file_size) {
    return Status::InvalidArgument(
        path + ": offsets claim " + std::to_string(total) +
        " elements but the file holds " +
        std::to_string((file_size - elements_pos) / sizeof(ElementId)));
  }
  std::vector<ElementId> elements(total);
  in.read(reinterpret_cast<char*>(elements.data()),
          static_cast<std::streamsize>(total * sizeof(ElementId)));
  if (!in) return Status::InvalidArgument(path + ": truncated elements");

  SetCollectionBuilder builder;
  for (uint64_t i = 0; i < num_sets; ++i) {
    std::span<const ElementId> set(elements.data() + offsets[i],
                                   offsets[i + 1] - offsets[i]);
    // Builder re-sorts/dedups; validate the invariant held on disk so a
    // tampered file is reported rather than silently normalized.
    for (size_t j = 1; j < set.size(); ++j) {
      if (set[j] <= set[j - 1]) {
        return Status::InvalidArgument(
            path + ": set " + std::to_string(i) + " not strictly sorted");
      }
    }
    builder.Add(set);
  }
  return builder.Build();
}

}  // namespace ssjoin
