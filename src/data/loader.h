// Text-file loading and saving for datasets.
//
// Lets real datasets (e.g. an actual DBLP dump) be dropped into the bench
// harnesses: one record per line. Two formats:
//   - string files: each line is one raw string (tokenize downstream);
//   - set files: each line is a whitespace-separated list of unsigned
//     integer element ids.

#pragma once

#include <string>
#include <vector>

#include "data/collection.h"
#include "util/status.h"

namespace ssjoin {

/// Reads one string per line. Empty trailing line is ignored.
Result<std::vector<std::string>> LoadStrings(const std::string& path);

/// Writes one string per line.
Status SaveStrings(const std::string& path,
                   const std::vector<std::string>& strings);

/// Reads one set per line (whitespace-separated element ids).
/// Fails with InvalidArgument on non-numeric tokens.
Result<SetCollection> LoadSets(const std::string& path);

/// Writes one set per line.
Status SaveSets(const std::string& path, const SetCollection& collection);

}  // namespace ssjoin
