// Set-collection storage.
//
// An SSJoin input is a collection of sets over an integer element domain
// (paper Section 2: r ⊆ {1..n}). SetCollection stores all sets in two flat
// arrays (CSR layout): cache-friendly iteration, zero per-set allocation,
// and cheap sharing across signature schemes. Elements within a set are
// kept sorted and deduplicated, which the merge-based intersection /
// hamming kernels rely on.

#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/status.h"

namespace ssjoin {

/// Index of a set within its collection.
using SetId = uint32_t;
/// An element of a set (paper: integer in {1..n}; we use the full uint32
/// range since all algorithms only need equality/order on elements).
using ElementId = uint32_t;

/// \brief Immutable CSR-layout collection of sorted sets.
///
/// Build with SetCollectionBuilder (or the FromVectors convenience), then
/// treat as read-only. All paper algorithms take `const SetCollection&`.
class SetCollection {
 public:
  SetCollection() { offsets_.push_back(0); }

  /// Number of sets.
  size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  /// The elements of set `id`, sorted ascending, duplicate-free.
  std::span<const ElementId> set(SetId id) const {
    SSJOIN_DCHECK_BOUNDS(id, size());
    return std::span<const ElementId>(elements_.data() + offsets_[id],
                                      offsets_[id + 1] - offsets_[id]);
  }

  /// |set(id)|.
  uint32_t set_size(SetId id) const {
    SSJOIN_DCHECK_BOUNDS(id, size());
    return static_cast<uint32_t>(offsets_[id + 1] - offsets_[id]);
  }

  /// Total number of stored elements (sum of set sizes).
  size_t total_elements() const { return elements_.size(); }

  /// Mean set size; 0 for an empty collection.
  double average_set_size() const {
    return empty() ? 0.0
                   : static_cast<double>(total_elements()) /
                         static_cast<double>(size());
  }

  /// Largest element value across all sets; 0 if there are none.
  ElementId max_element() const;

  /// Largest set size; 0 for an empty collection.
  uint32_t max_set_size() const;
  /// Smallest set size; 0 for an empty collection.
  uint32_t min_set_size() const;

  /// Convenience constructor from nested vectors (sorts + dedups each set).
  static SetCollection FromVectors(
      const std::vector<std::vector<ElementId>>& sets);

  /// A random sample (without replacement) of `k` sets, preserving nothing
  /// about ids. Used by the parameter advisor. If k >= size(), returns a
  /// copy. `seed` makes the sample reproducible.
  SetCollection Sample(size_t k, uint64_t seed) const;

 private:
  friend class SetCollectionBuilder;
  std::vector<size_t> offsets_;      // size() + 1 entries
  std::vector<ElementId> elements_;  // concatenated sorted sets
};

/// \brief Incremental builder for SetCollection.
class SetCollectionBuilder {
 public:
  /// Appends a set; the input may be unsorted and may contain duplicates.
  /// Returns the id assigned to the new set.
  SetId Add(std::vector<ElementId> elements);
  SetId Add(std::initializer_list<ElementId> elements) {
    return Add(std::vector<ElementId>(elements));
  }
  SetId Add(std::span<const ElementId> elements) {
    return Add(std::vector<ElementId>(elements.begin(), elements.end()));
  }

  /// Appends a *bag*: duplicates are preserved by re-encoding the j-th
  /// occurrence of element e as a distinct synthetic element. This is the
  /// standard trick that lets set algorithms run on multisets (used for
  /// q-gram bags in the edit-distance join, paper Section 8.2).
  SetId AddBag(std::span<const ElementId> elements);

  size_t size() const { return collection_.size(); }

  /// Finalizes and returns the collection; the builder is left empty.
  SetCollection Build();

 private:
  SetCollection collection_;
};

/// Basic distribution statistics of a collection (used by benches/docs).
struct CollectionStats {
  size_t num_sets = 0;
  size_t total_elements = 0;
  double avg_set_size = 0;
  uint32_t min_set_size = 0;
  uint32_t max_set_size = 0;
  size_t distinct_elements = 0;
};

CollectionStats ComputeStats(const SetCollection& collection);

/// Renders stats on one line ("sets=... avg=... ...").
std::string ToString(const CollectionStats& stats);

}  // namespace ssjoin
