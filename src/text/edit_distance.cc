#include "text/edit_distance.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <vector>

namespace ssjoin {

uint32_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter
  std::vector<uint32_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = static_cast<uint32_t>(j);
  for (size_t i = 1; i <= a.size(); ++i) {
    uint32_t diag = row[0];
    row[0] = static_cast<uint32_t>(i);
    for (size_t j = 1; j <= b.size(); ++j) {
      uint32_t next_diag = row[j];
      uint32_t sub = diag + (a[i - 1] == b[j - 1] ? 0u : 1u);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
      diag = next_diag;
    }
  }
  return row[b.size()];
}

uint32_t BoundedEditDistance(std::string_view a, std::string_view b,
                             uint32_t k) {
  if (a.size() < b.size()) std::swap(a, b);
  size_t len_a = a.size(), len_b = b.size();
  if (len_a - len_b > k) return k + 1;  // length difference alone exceeds k
  if (len_b == 0) return static_cast<uint32_t>(len_a);

  // Ukkonen banding: only cells with |i - j| <= k can be <= k.
  constexpr uint32_t kInf = std::numeric_limits<uint32_t>::max() / 2;
  std::vector<uint32_t> row(len_b + 1, kInf);
  for (size_t j = 0; j <= std::min<size_t>(len_b, k); ++j) {
    row[j] = static_cast<uint32_t>(j);
  }
  for (size_t i = 1; i <= len_a; ++i) {
    size_t lo = i > k ? i - k : 0;
    size_t hi = std::min(len_b, i + k);
    uint32_t diag = row[lo > 0 ? lo - 1 : 0];
    uint32_t left = kInf;
    if (lo == 0) {
      diag = static_cast<uint32_t>(i - 1);
      left = static_cast<uint32_t>(i);
      row[0] = left;
    } else {
      row[lo - 1] = kInf;  // cell just left of the band is unreachable
    }
    uint32_t row_min = lo == 0 ? row[0] : kInf;
    for (size_t j = std::max<size_t>(lo, 1); j <= hi; ++j) {
      uint32_t next_diag = row[j];
      uint32_t sub = diag + (a[i - 1] == b[j - 1] ? 0u : 1u);
      uint32_t cur = std::min({next_diag + 1, left + 1, sub});
      row[j] = cur;
      left = cur;
      diag = next_diag;
      row_min = std::min(row_min, cur);
    }
    if (hi < len_b) row[hi + 1] = kInf;  // right of band unreachable
    if (row_min > k) return k + 1;       // whole band exceeded the threshold
  }
  return row[len_b];
}

bool WithinEditDistance(std::string_view a, std::string_view b, uint32_t k) {
  return BoundedEditDistance(a, b, k) <= k;
}

}  // namespace ssjoin
