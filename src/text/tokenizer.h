// String-to-set tokenization.
//
// The paper's jaccard experiments (Section 8.1) tokenize strings on white
// space and hash each word to a 32-bit integer; the resulting word sets are
// the SSJoin input. WordTokenizer reproduces that pipeline.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "data/collection.h"

namespace ssjoin {

/// Options controlling word tokenization.
struct TokenizerOptions {
  /// Lower-case tokens before hashing, so "Seattle" == "seattle".
  bool lowercase = false;
  /// Treat any character for which std::isspace is true as a separator.
  /// When false, only ' ' separates tokens.
  bool split_on_all_whitespace = true;
};

/// \brief Whitespace word tokenizer with 32-bit token hashing.
class WordTokenizer {
 public:
  explicit WordTokenizer(TokenizerOptions options = {})
      : options_(options) {}

  /// Splits `text` into word tokens (no hashing).
  std::vector<std::string> Split(std::string_view text) const;

  /// Tokenizes and hashes `text` into element ids (one per token, with
  /// duplicates preserved; callers choose set vs bag semantics).
  std::vector<ElementId> Tokenize(std::string_view text) const;

  /// Tokenizes every string and builds a SetCollection (set semantics:
  /// duplicate tokens within one string collapse).
  SetCollection TokenizeAll(const std::vector<std::string>& texts) const;

 private:
  const TokenizerOptions options_;
};

}  // namespace ssjoin
