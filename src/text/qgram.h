// q-gram (n-gram) extraction.
//
// Edit-distance string joins run on q-gram multisets (paper Section 8.2):
// if EditDistance(s1, s2) <= k then the hamming distance between their
// q-gram bags is <= q*k, so an SSJoin with hamming threshold q*k is a
// complete filter. The paper finds q = 1 optimal for PartEnum (small
// element domains do not hurt it) while prefix filter needs q = 4..6.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "data/collection.h"

namespace ssjoin {

/// Options controlling q-gram extraction.
struct QgramOptions {
  /// Gram length (the paper's n). 1 = character unigrams.
  uint32_t q = 1;
  /// Pad the string with q-1 copies of a sentinel on each side, the
  /// standard way to give boundary characters full weight. With padding,
  /// a string of length L yields L + q - 1 grams; without, L - q + 1.
  bool pad = true;
  /// Sentinel used for padding; must not occur in the input.
  char pad_char = '\x01';
};

/// \brief Extracts q-grams and hashes them to element ids.
class QgramExtractor {
 public:
  explicit QgramExtractor(QgramOptions options = {});

  /// The q-grams of `text` as strings, in positional order.
  std::vector<std::string> Grams(std::string_view text) const;

  /// The q-grams of `text` hashed to element ids (multiplicities kept, in
  /// positional order).
  std::vector<ElementId> Extract(std::string_view text) const;

  /// Builds the q-gram *bag* collection of `texts` (bag semantics via
  /// occurrence re-encoding, see SetCollectionBuilder::AddBag) — the input
  /// shape required by the edit-distance join.
  SetCollection ExtractAllAsBags(const std::vector<std::string>& texts) const;

  uint32_t q() const { return options_.q; }

  /// Upper bound on the q-gram-bag hamming distance implied by an edit
  /// distance of `k` (paper Section 8.2: Hd <= q*k per edit operation
  /// affecting at most q grams... with padding each edit touches at most q
  /// grams on each string side, bounding Hd by 2*q*k in the worst case; we
  /// use the standard tight bound q*k for substitutions-dominated inputs
  /// and expose both).
  uint32_t HammingBound(uint32_t k) const { return options_.q * k * 2; }

 private:
  const QgramOptions options_;
};

}  // namespace ssjoin
