#include "text/tokenizer.h"

#include <cctype>

#include "util/hashing.h"

namespace ssjoin {

std::vector<std::string> WordTokenizer::Split(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto is_sep = [&](char c) {
    if (options_.split_on_all_whitespace) {
      return std::isspace(static_cast<unsigned char>(c)) != 0;
    }
    return c == ' ';
  };
  for (char c : text) {
    if (is_sep(c)) {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(options_.lowercase
                            ? static_cast<char>(std::tolower(
                                  static_cast<unsigned char>(c)))
                            : c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<ElementId> WordTokenizer::Tokenize(std::string_view text) const {
  std::vector<ElementId> out;
  for (const std::string& token : Split(text)) {
    out.push_back(HashStringToken(token));
  }
  return out;
}

SetCollection WordTokenizer::TokenizeAll(
    const std::vector<std::string>& texts) const {
  SetCollectionBuilder builder;
  for (const std::string& text : texts) {
    builder.Add(Tokenize(text));
  }
  return builder.Build();
}

}  // namespace ssjoin
