// Levenshtein edit distance with thresholded (banded) verification.
//
// The edit-distance string join (paper Section 8.2) post-filters candidate
// pairs with an exact edit-distance check "in application code". The
// thresholded variant runs in O(k * min(|a|, |b|)) time and O(min) space,
// which is what makes the post-filter phase cheap relative to candidate
// generation.

#pragma once

#include <cstdint>
#include <string_view>

namespace ssjoin {

/// Full Levenshtein distance (unit-cost insert / delete / substitute).
/// O(|a|*|b|) time, O(min(|a|,|b|)) space.
uint32_t EditDistance(std::string_view a, std::string_view b);

/// Returns true iff EditDistance(a, b) <= k, using a banded dynamic
/// program that bails out as soon as the whole band exceeds k.
bool WithinEditDistance(std::string_view a, std::string_view b, uint32_t k);

/// Banded edit distance: returns the exact distance if it is <= k,
/// otherwise any value > k. This is the primitive behind
/// WithinEditDistance; exposed for tests and for callers that need the
/// value.
uint32_t BoundedEditDistance(std::string_view a, std::string_view b,
                             uint32_t k);

}  // namespace ssjoin
