#include "text/qgram.h"


#include "util/check.h"
#include "util/hashing.h"

namespace ssjoin {

QgramExtractor::QgramExtractor(QgramOptions options) : options_(options) {
  SSJOIN_CHECK(options_.q >= 1, "q-grams need q >= 1 (got {})", options_.q);
}

std::vector<std::string> QgramExtractor::Grams(std::string_view text) const {
  std::string padded;
  if (options_.pad && options_.q > 1) {
    padded.assign(options_.q - 1, options_.pad_char);
    padded += text;
    padded.append(options_.q - 1, options_.pad_char);
  } else {
    padded.assign(text);
  }
  std::vector<std::string> grams;
  if (padded.size() < options_.q) {
    if (!padded.empty()) grams.push_back(padded);
    return grams;
  }
  size_t count = padded.size() - options_.q + 1;
  grams.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    grams.push_back(padded.substr(i, options_.q));
  }
  return grams;
}

std::vector<ElementId> QgramExtractor::Extract(std::string_view text) const {
  std::vector<ElementId> out;
  if (options_.q == 1 && !text.empty()) {
    // Fast path: unigrams are just the characters.
    out.reserve(text.size());
    for (unsigned char c : text) out.push_back(static_cast<ElementId>(c));
    return out;
  }
  for (const std::string& gram : Grams(text)) {
    out.push_back(HashStringToken(gram));
  }
  return out;
}

SetCollection QgramExtractor::ExtractAllAsBags(
    const std::vector<std::string>& texts) const {
  SetCollectionBuilder builder;
  for (const std::string& text : texts) {
    std::vector<ElementId> grams = Extract(text);
    builder.AddBag(grams);
  }
  return builder.Build();
}

}  // namespace ssjoin
