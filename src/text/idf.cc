#include "text/idf.h"

#include <algorithm>
#include <cmath>

namespace ssjoin {

namespace {
void Accumulate(const SetCollection& collection,
                std::unordered_map<ElementId, uint32_t>* doc_freq) {
  for (SetId id = 0; id < collection.size(); ++id) {
    for (ElementId e : collection.set(id)) {
      ++(*doc_freq)[e];
    }
  }
}
}  // namespace

IdfWeights IdfWeights::Compute(const SetCollection& collection) {
  IdfWeights idf;
  idf.num_documents_ = collection.size();
  Accumulate(collection, &idf.doc_freq_);
  return idf;
}

IdfWeights IdfWeights::Compute(const SetCollection& r,
                               const SetCollection& s) {
  IdfWeights idf;
  idf.num_documents_ = r.size() + s.size();
  Accumulate(r, &idf.doc_freq_);
  Accumulate(s, &idf.doc_freq_);
  return idf;
}

double IdfWeights::Weight(ElementId e) const {
  double n = std::max<double>(1.0, static_cast<double>(num_documents_));
  auto it = doc_freq_.find(e);
  if (it == doc_freq_.end()) return std::log(n * 2.0);
  return std::log(n / static_cast<double>(it->second));
}

uint32_t IdfWeights::DocumentFrequency(ElementId e) const {
  auto it = doc_freq_.find(e);
  return it == doc_freq_.end() ? 0 : it->second;
}

double IdfWeights::DefaultPruningThreshold() const {
  return std::log(std::max<double>(2.0, static_cast<double>(num_documents_)));
}

void SortByRarity(const IdfWeights& idf, std::vector<ElementId>* elements) {
  std::sort(elements->begin(), elements->end(),
            [&](ElementId a, ElementId b) {
              uint32_t fa = idf.DocumentFrequency(a);
              uint32_t fb = idf.DocumentFrequency(b);
              if (fa != fb) return fa < fb;
              return a < b;
            });
}

}  // namespace ssjoin
