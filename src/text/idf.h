// IDF (inverse document frequency) weighting.
//
// Paper Section 7: the IDF weight of an element is log(1 / f_e) where f_e
// is the fraction of input sets containing e. WtEnum's pruning argument
// relies on this definition: any element subset whose weights sum to
// TH = log(max(|R|, |S|)) occurs in at most one input set in expectation
// (under independence), so prefixes that heavy rarely collide.

#pragma once

#include <unordered_map>
#include <vector>

#include "data/collection.h"

namespace ssjoin {

/// \brief Per-element IDF weights computed from one or two collections.
class IdfWeights {
 public:
  /// Computes document frequencies over `collection` (self-join case).
  static IdfWeights Compute(const SetCollection& collection);

  /// Computes document frequencies over the union of two collections
  /// (binary-join case: frequencies in R ∪ S, as the prefix-filter
  /// baseline also requires).
  static IdfWeights Compute(const SetCollection& r, const SetCollection& s);

  /// IDF weight of element e: log(N / df(e)). Elements never seen get the
  /// maximum weight log(N * 2) (rarer than everything observed).
  double Weight(ElementId e) const;

  /// Number of sets the element appears in (0 if unseen).
  uint32_t DocumentFrequency(ElementId e) const;

  /// Total number of documents (sets) the statistics were computed over.
  size_t num_documents() const { return num_documents_; }

  /// The WtEnum default pruning threshold TH = log(max(|R|,|S|)) (paper
  /// Section 7 discussion following Example 6).
  double DefaultPruningThreshold() const;

 private:
  size_t num_documents_ = 0;
  std::unordered_map<ElementId, uint32_t> doc_freq_;
};

/// Orders `elements` by ascending document frequency (rarest first), the
/// ordering prefix filter uses for its signature prefixes; ties broken by
/// element id ("arbitrarily but consistently", paper Section 3.3).
void SortByRarity(const IdfWeights& idf, std::vector<ElementId>* elements);

}  // namespace ssjoin
