// Hash primitives used throughout the library.
//
// Signature schemes reduce variable-length structures (projections,
// prefixes, minhash tuples) to fixed-width hash values (paper Section 4.2:
// "we can simply hash these signatures into 4 byte values"). We default to
// 64-bit signature hashes to keep accidental collisions negligible at
// millions of sets; a 32-bit mode reproduces the paper's setup exactly.

#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace ssjoin {

/// 64-bit finalizer with full avalanche (splitmix64). Suitable for hashing
/// integers and as a building block for sequence hashing.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The combine step of HashCombine with the expensive Mix64 already
/// applied to the value. Batched callers (core/kernels/hash_kernels.h)
/// precompute Mix64 once per element and fold it many times through
/// this — value-exact with HashCombine by construction.
constexpr uint64_t CombineMixed(uint64_t seed, uint64_t mixed) {
  return seed ^ (mixed + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Combines a hash accumulator with the next value (boost-style, 64-bit).
constexpr uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return CombineMixed(seed, Mix64(v));
}

/// Hashes a 32-bit value with an explicit seed, producing a 64-bit hash.
/// Used for seeded hash families (minhash, AMS sketch).
constexpr uint64_t SeededHash32(uint32_t value, uint64_t seed) {
  return Mix64(Mix64(seed) ^ static_cast<uint64_t>(value));
}

/// Incremental hasher over a sequence of integers. Order-sensitive.
class SequenceHasher {
 public:
  explicit SequenceHasher(uint64_t seed = 0x5361'6c74'5361'6c74ULL)
      : state_(Mix64(seed)) {}

  void Add(uint64_t v) { state_ = HashCombine(state_, v); }

  /// Folds a value whose Mix64 was precomputed (MixBatch). Equivalent to
  /// Add(v) when `mixed == Mix64(v)` — the hot siggen loops (PartEnum
  /// subsets, WtEnum DFS) mix each element once and fold it per subset.
  void AddMixed(uint64_t mixed) { state_ = CombineMixed(state_, mixed); }

  void AddSpan(std::span<const uint32_t> values) {
    for (uint32_t v : values) Add(v);
  }

  uint64_t Finish() const { return Mix64(state_); }

 private:
  uint64_t state_;
};

/// Hashes an ordered span of 32-bit elements to 64 bits.
uint64_t HashSpan(std::span<const uint32_t> values, uint64_t seed = 0);

/// FNV-1a over bytes; used to map string tokens to 32-bit element ids
/// (paper Section 8.1: words are "hashed ... into 32 bit integers").
uint32_t HashStringToken(std::string_view token);

/// Narrows a 64-bit hash to `bits` bits (1..64). Used to emulate the
/// paper's 4-byte signature values when hash_bits == 32.
constexpr uint64_t NarrowHash(uint64_t h, int bits) {
  return bits >= 64 ? h : (h >> (64 - bits));
}

}  // namespace ssjoin
