#include "util/ams_sketch.h"

#include <algorithm>

#include "util/check.h"
#include "util/hashing.h"

namespace ssjoin {

AmsSketch::AmsSketch(int width, int depth, uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  SSJOIN_CHECK(width_ > 0 && depth_ > 0,
               "AmsSketch needs positive dimensions (width={}, depth={})",
               width_, depth_);
  counters_.assign(static_cast<size_t>(width_) * depth_, 0);
}

void AmsSketch::Add(uint64_t item) { AddWithCount(item, 1); }

void AmsSketch::AddWithCount(uint64_t item, int64_t count) {
  SSJOIN_CHECK(count > 0, "AMS stream frequencies are positive (got {})",
               count);
  items_ += count;
  for (int d = 0; d < depth_; ++d) {
    for (int w = 0; w < width_; ++w) {
      uint64_t h = Mix64(item ^ Mix64(seed_ + d * 1000003ULL + w));
      int64_t sign = (h & 1) ? 1 : -1;
      size_t bucket = static_cast<size_t>(d) * width_ + w;
      SSJOIN_DCHECK_BOUNDS(bucket, counters_.size());
      counters_[bucket] += sign * count;
    }
  }
}

double AmsSketch::Estimate() const {
  std::vector<double> group_means(depth_);
  for (int d = 0; d < depth_; ++d) {
    double sum = 0;
    for (int w = 0; w < width_; ++w) {
      double c =
          static_cast<double>(counters_[static_cast<size_t>(d) * width_ + w]);
      sum += c * c;
    }
    group_means[d] = sum / width_;
  }
  std::sort(group_means.begin(), group_means.end());
  int mid = depth_ / 2;
  if (depth_ % 2 == 1) return group_means[mid];
  return 0.5 * (group_means[mid - 1] + group_means[mid]);
}

double ExactF2(const std::vector<uint64_t>& items) {
  std::vector<uint64_t> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  double f2 = 0;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    double c = static_cast<double>(j - i);
    f2 += c * c;
    i = j;
  }
  return f2;
}

}  // namespace ssjoin
