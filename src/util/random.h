// Deterministic pseudo-random primitives.
//
// Every randomized component in the library (PartEnum's dimension
// permutation, minhash families, data generators) takes an explicit seed so
// that experiments and tests are exactly reproducible.

#pragma once

#include <cstdint>
#include <vector>

namespace ssjoin {

/// \brief PCG32 pseudo-random generator (O'Neill 2014).
///
/// Small state, good statistical quality, fully deterministic across
/// platforms (unlike std::mt19937 + std::uniform_int_distribution, whose
/// distribution output is implementation-defined).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL,
               uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit value.
  uint32_t Next32();

  /// Uniform 64-bit value.
  uint64_t Next64();

  /// Uniform integer in [0, bound). bound must be > 0. Unbiased
  /// (Lemire-style rejection).
  uint32_t Uniform(uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint32_t UniformRange(uint32_t lo, uint32_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
  uint64_t inc_;
};

/// Returns a uniformly random permutation of {0, ..., n-1} (Fisher–Yates).
/// PartEnum uses this as the dimension permutation pi (paper Figure 3).
std::vector<uint32_t> RandomPermutation(uint32_t n, Rng& rng);

/// Samples `k` distinct values from {0, ..., n-1} (Floyd's algorithm),
/// returned in unspecified order. Requires k <= n.
std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k,
                                               Rng& rng);

}  // namespace ssjoin
