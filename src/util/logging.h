// Minimal leveled logging for library internals and bench harnesses.
//
// Library code logs nothing by default (level kWarn); bench binaries raise
// the level for progress reporting. Not thread-safe by design: all current
// callers log from a single thread.

#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace ssjoin {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SSJOIN_LOG(level)                                            \
  ::ssjoin::internal::LogMessage(::ssjoin::LogLevel::k##level, __FILE__, \
                                 __LINE__)

}  // namespace ssjoin
