// Packed binary vector.
//
// Paper Section 2.2 views a set s ⊆ {1..n} as an n-dimensional binary
// vector; hamming distance between sets is the hamming distance between
// their vector representations. BitVector provides that dense view with
// popcount-based distance, used by tests and by the dense code paths.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ssjoin {

/// Fixed-size packed bit vector with O(n/64) hamming distance.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(uint32_t num_bits);

  /// Builds the characteristic vector of `elements` over domain
  /// {0..num_bits-1}. Elements >= num_bits are a programming error.
  static BitVector FromSet(std::span<const uint32_t> elements,
                           uint32_t num_bits);

  uint32_t size() const { return num_bits_; }

  void Set(uint32_t i);
  void Clear(uint32_t i);
  bool Test(uint32_t i) const;

  /// Number of set bits.
  uint32_t Count() const;

  /// Hamming distance |{i : a[i] != b[i]}|. Vectors must be equal-sized.
  static uint32_t HammingDistance(const BitVector& a, const BitVector& b);

  /// Size of the intersection of the underlying sets (AND + popcount).
  static uint32_t IntersectionSize(const BitVector& a, const BitVector& b);

  bool operator==(const BitVector& other) const = default;

 private:
  uint32_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

/// Hamming distance between two *sorted* element arrays = size of their
/// symmetric difference (paper: Hd(s1,s2) = |(s1-s2) ∪ (s2-s1)|).
/// O(|a|+|b|), no dense materialization.
uint32_t SparseHammingDistance(std::span<const uint32_t> a,
                               std::span<const uint32_t> b);

/// Intersection size of two *sorted* element arrays, O(|a|+|b|).
uint32_t SortedIntersectionSize(std::span<const uint32_t> a,
                                std::span<const uint32_t> b);

}  // namespace ssjoin
