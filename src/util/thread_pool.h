// A deliberately small parallel-execution layer for the join drivers.
//
// Design constraints (DESIGN.md Section 6):
//   * deterministic — work is split by *static* chunking, never stolen, so
//     a join produces byte-identical output for any thread count;
//   * zero-cost at num_threads == 1 — no threads are spawned and every
//     ParallelFor body runs inline on the caller, preserving the serial
//     reference path exactly;
//   * reusable — one pool serves all phases of a join, paying the thread
//     spawn once per driver invocation instead of once per phase.
//
// The pool owns size() - 1 worker threads; the calling thread acts as the
// last worker, so ThreadPool(1) is a pure no-op wrapper.

#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace ssjoin::obs {
class Counter;
class MetricsRegistry;
}  // namespace ssjoin::obs

namespace ssjoin {

/// Resolves a JoinOptions-style thread count: 0 means one thread per
/// hardware core (at least 1), anything else is taken literally.
size_t ResolveThreadCount(size_t requested);

/// The half-open range of items chunk `index` owns when `total` items are
/// split into `chunks` contiguous chunks as evenly as possible (sizes
/// differ by at most one, lower indices get the larger chunks).
struct ChunkRange {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
};

ChunkRange ChunkOf(size_t total, size_t chunks, size_t index);

/// Fixed-size pool of worker threads with fork-join execution.
class ThreadPool {
 public:
  /// `num_threads` is the total parallelism including the caller; the pool
  /// spawns num_threads - 1 workers. 0 is treated as 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism: spawned workers + the calling thread.
  size_t size() const { return threads_.size() + 1; }

  /// Publishes pool activity into `metrics` ("threadpool.forkjoins"
  /// counts dispatched fork-joins, "threadpool.size" reports the
  /// parallelism). The counter is resolved once here, so the RunOnAll
  /// path stays a single pointer test. Not owned; nullptr (the default)
  /// detaches and restores the zero-cost path.
  void BindMetrics(obs::MetricsRegistry* metrics);

  /// Runs job(worker_index) once for every worker_index in [0, size()),
  /// index size()-1 on the calling thread, and returns when all are done.
  /// Not reentrant: a job must not call back into the same pool.
  ///
  /// If any invocation throws, the fork-join still completes (every other
  /// worker finishes its invocation) and the first-recorded exception is
  /// rethrown on the calling thread — it never escapes on a worker, which
  /// would std::terminate the process.
  void RunOnAll(const std::function<void(size_t)>& job)
      SSJOIN_EXCLUDES(mutex_);

 private:
  void WorkerLoop(size_t index) SSJOIN_EXCLUDES(mutex_);
  // Stores `err` as the fork-join's exception unless one is already
  // recorded. Thread-safe.
  void RecordException(std::exception_ptr err) SSJOIN_EXCLUDES(mutex_);

  // Spawned in the constructor, joined in the destructor; never touched
  // in between, so the vector itself needs no lock (the *elements* run
  // concurrently, the container does not change).
  std::vector<std::thread> threads_;  // ssjoin-lint: allow(guarded-by-required)
  // Bound by BindMetrics between fork-joins (a control-thread-only call,
  // per the contract above); workers never read it.
  obs::Counter* forkjoins_ = nullptr;  // ssjoin-lint: allow(guarded-by-required)
  util::Mutex mutex_;
  util::CondVar work_ready_;
  util::CondVar work_done_;
  const std::function<void(size_t)>* job_ SSJOIN_GUARDED_BY(mutex_) = nullptr;
  std::exception_ptr first_error_ SSJOIN_GUARDED_BY(mutex_);
  uint64_t generation_ SSJOIN_GUARDED_BY(mutex_) = 0;
  size_t remaining_ SSJOIN_GUARDED_BY(mutex_) = 0;
  bool shutdown_ SSJOIN_GUARDED_BY(mutex_) = false;
};

/// Fork-join loop over [0, total): fn(begin, end, chunk) is invoked once
/// per chunk in [0, pool.size()) with the static ChunkOf ranges. With a
/// 1-thread pool this is a plain inline call — no synchronization, no
/// spawn — so serial callers pay nothing.
void ParallelFor(ThreadPool& pool, size_t total,
                 const std::function<void(size_t, size_t, size_t)>& fn);

/// Interruptible variant: each chunk executes as fixed-size sub-blocks of
/// `block` items, polling `should_stop` before every sub-block and
/// abandoning the rest of the chunk once it returns true. `fn` may
/// therefore run several times for the same chunk index, over adjacent
/// sub-ranges, in order, on the same worker — bodies must *accumulate*
/// into per-chunk slots (`+=`), never assign. Chunk boundaries are the
/// same static ChunkOf split as the plain overload, so completed work is
/// deterministic per thread count; which sub-blocks were skipped after a
/// stop is not (callers discard partial output on a stop).
void ParallelFor(ThreadPool& pool, size_t total,
                 const std::function<void(size_t, size_t, size_t)>& fn,
                 const std::function<bool()>& should_stop,
                 size_t block = 4096);

}  // namespace ssjoin
