#include "util/status.h"

namespace ssjoin {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace ssjoin
