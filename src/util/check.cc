#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace ssjoin::internal {

[[noreturn]] void CheckFailed(const char* file, int line,
                              const char* condition,
                              const std::string& message) {
  // fprintf (not iostreams): must work during static init/teardown and
  // produce one atomic line that death tests and sanitizer logs can match.
  if (message.empty()) {
    std::fprintf(stderr, "%s:%d: SSJOIN_CHECK failed: %s\n", file, line,
                 condition);
  } else {
    std::fprintf(stderr, "%s:%d: SSJOIN_CHECK failed: %s — %s\n", file, line,
                 condition, message.c_str());
  }
  // Best effort: the process is about to abort; there is nowhere to
  // report a flush failure.
  std::fflush(stderr);  // ssjoin-lint: allow(no-unchecked-io)
  std::abort();
}

}  // namespace ssjoin::internal
