#include "util/bit_vector.h"

#include <bit>

#include "util/check.h"

namespace ssjoin {

BitVector::BitVector(uint32_t num_bits)
    : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

BitVector BitVector::FromSet(std::span<const uint32_t> elements,
                             uint32_t num_bits) {
  BitVector v(num_bits);
  for (uint32_t e : elements) v.Set(e);
  return v;
}

void BitVector::Set(uint32_t i) {
  SSJOIN_DCHECK_BOUNDS(i, num_bits_);
  words_[i >> 6] |= (1ULL << (i & 63));
}

void BitVector::Clear(uint32_t i) {
  SSJOIN_DCHECK_BOUNDS(i, num_bits_);
  words_[i >> 6] &= ~(1ULL << (i & 63));
}

bool BitVector::Test(uint32_t i) const {
  SSJOIN_DCHECK_BOUNDS(i, num_bits_);
  return (words_[i >> 6] >> (i & 63)) & 1;
}

uint32_t BitVector::Count() const {
  uint32_t total = 0;
  for (uint64_t w : words_) total += std::popcount(w);
  return total;
}

uint32_t BitVector::HammingDistance(const BitVector& a, const BitVector& b) {
  SSJOIN_CHECK(a.num_bits_ == b.num_bits_,
               "hamming distance over mismatched domains ({} vs {} bits)",
               a.num_bits_, b.num_bits_);
  uint32_t dist = 0;
  for (size_t i = 0; i < a.words_.size(); ++i) {
    dist += std::popcount(a.words_[i] ^ b.words_[i]);
  }
  return dist;
}

uint32_t BitVector::IntersectionSize(const BitVector& a, const BitVector& b) {
  SSJOIN_CHECK(a.num_bits_ == b.num_bits_,
               "intersection over mismatched domains ({} vs {} bits)",
               a.num_bits_, b.num_bits_);
  uint32_t size = 0;
  for (size_t i = 0; i < a.words_.size(); ++i) {
    size += std::popcount(a.words_[i] & b.words_[i]);
  }
  return size;
}

uint32_t SparseHammingDistance(std::span<const uint32_t> a,
                               std::span<const uint32_t> b) {
  size_t i = 0, j = 0;
  uint32_t dist = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++dist;
      ++i;
    } else {
      ++dist;
      ++j;
    }
  }
  dist += static_cast<uint32_t>((a.size() - i) + (b.size() - j));
  return dist;
}

uint32_t SortedIntersectionSize(std::span<const uint32_t> a,
                                std::span<const uint32_t> b) {
  size_t i = 0, j = 0;
  uint32_t size = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++size;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return size;
}

}  // namespace ssjoin
