#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ssjoin {

ZipfSampler::ZipfSampler(uint32_t n, double theta) : n_(n), theta_(theta) {
  SSJOIN_CHECK(n > 0, "Zipf domain must be non-empty");
  SSJOIN_CHECK(theta >= 0, "Zipf skew must be >= 0 (got {})", theta);
  cdf_.resize(n);
  double acc = 0;
  for (uint32_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k) + 1.0, theta);
    cdf_[k] = acc;
  }
  for (uint32_t k = 0; k < n; ++k) cdf_[k] /= acc;
  cdf_[n - 1] = 1.0;  // guard against rounding
}

uint32_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(uint32_t k) const {
  SSJOIN_DCHECK_BOUNDS(k, n_);
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace ssjoin
