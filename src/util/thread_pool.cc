#include "util/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"

namespace ssjoin {

size_t ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ChunkRange ChunkOf(size_t total, size_t chunks, size_t index) {
  SSJOIN_CHECK(chunks > 0 && index < chunks,
               "ChunkOf: index {} out of {} chunks", index, chunks);
  size_t base = total / chunks;
  size_t extra = total % chunks;
  size_t begin = index * base + std::min(index, extra);
  size_t size = base + (index < extra ? 1 : 0);
  return {begin, begin + size};
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::RecordException(std::exception_ptr err) {
  util::MutexLock lock(mutex_);
  if (!first_error_) first_error_ = std::move(err);
}

void ThreadPool::BindMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    forkjoins_ = nullptr;
    return;
  }
  // Dispatch counts depend on the pool size (a 1-thread pool runs
  // everything inline), so this is runtime-stability data by definition.
  forkjoins_ =
      &metrics->counter("threadpool.forkjoins", obs::Stability::kRuntime);
  metrics->gauge("threadpool.size", obs::Stability::kRuntime)
      .Set(static_cast<double>(size()));
}

void ThreadPool::RunOnAll(const std::function<void(size_t)>& job) {
  if (forkjoins_ != nullptr) forkjoins_->Add(1);
  if (threads_.empty()) {
    job(0);
    return;
  }
  {
    util::MutexLock lock(mutex_);
    SSJOIN_CHECK(job_ == nullptr, "ThreadPool::RunOnAll is not reentrant");
    first_error_ = nullptr;
    job_ = &job;
    remaining_ = threads_.size();
    ++generation_;
  }
  work_ready_.NotifyAll();
  try {
    job(threads_.size());  // The caller is the last worker.
  } catch (...) {
    RecordException(std::current_exception());
  }
  std::exception_ptr err;
  {
    util::MutexLock lock(mutex_);
    while (remaining_ != 0) work_done_.Wait(lock);
    job_ = nullptr;
    err = std::move(first_error_);
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::WorkerLoop(size_t index) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t)>* job;
    {
      util::MutexLock lock(mutex_);
      while (!shutdown_ && generation_ == seen) work_ready_.Wait(lock);
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    // An exception must not escape on a worker thread (std::terminate);
    // park it for the calling thread to rethrow after the join.
    try {
      (*job)(index);
    } catch (...) {
      RecordException(std::current_exception());
    }
    {
      util::MutexLock lock(mutex_);
      if (--remaining_ == 0) work_done_.NotifyAll();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t total,
                 const std::function<void(size_t, size_t, size_t)>& fn) {
  size_t chunks = pool.size();
  if (chunks == 1) {
    fn(0, total, 0);
    return;
  }
  pool.RunOnAll([&](size_t chunk) {
    ChunkRange range = ChunkOf(total, chunks, chunk);
    fn(range.begin, range.end, chunk);
  });
}

void ParallelFor(ThreadPool& pool, size_t total,
                 const std::function<void(size_t, size_t, size_t)>& fn,
                 const std::function<bool()>& should_stop, size_t block) {
  if (!should_stop) {
    ParallelFor(pool, total, fn);
    return;
  }
  SSJOIN_CHECK(block > 0, "ParallelFor: sub-block size must be positive");
  size_t chunks = pool.size();
  auto run_chunk = [&](size_t chunk) {
    ChunkRange range = ChunkOf(total, chunks, chunk);
    for (size_t begin = range.begin; begin < range.end; begin += block) {
      if (should_stop()) return;
      fn(begin, std::min(begin + block, range.end), chunk);
    }
  };
  if (chunks == 1) {
    run_chunk(0);
    return;
  }
  pool.RunOnAll(run_chunk);
}

}  // namespace ssjoin
