// Wall-clock timing utilities.
//
// Every experiment in the paper reports total computation time broken into
// three phases: signature generation, candidate-pair generation, and
// post-filtering (the stacked bars of Figures 12, 18, 19). PhaseTimer
// accumulates per-phase elapsed time under stable phase names so all join
// algorithms report comparable breakdowns.

#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "util/thread_annotations.h"

namespace ssjoin {

/// Monotonic stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time per named phase.
///
/// Usage:
///   PhaseTimer timer;
///   { auto scope = timer.Measure("SigGen"); ... }
///   double t = timer.Seconds("SigGen");
///
/// Accumulation (Add, including via Scope destruction) is thread-safe:
/// concurrent scopes from worker threads serialize on an internal mutex.
/// The readers (Seconds, TotalSeconds, phases) also take the mutex,
/// except phases(), which returns a reference and must only be called
/// once all measuring threads have joined.
class PhaseTimer {
 public:
  class Scope {
   public:
    Scope(PhaseTimer* timer, std::string phase)
        : timer_(timer), phase_(std::move(phase)) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { timer_->Add(phase_, watch_.ElapsedSeconds()); }

   private:
    PhaseTimer* timer_;
    std::string phase_;
    Stopwatch watch_;
  };

  /// Starts measuring `phase`; the time is added when the Scope dies.
  Scope Measure(std::string phase) { return Scope(this, std::move(phase)); }

  /// Adds `seconds` to the accumulated time of `phase`. Thread-safe.
  void Add(const std::string& phase, double seconds) SSJOIN_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    phases_[phase] += seconds;
  }

  /// Accumulated seconds for `phase` (0 if never measured).
  double Seconds(const std::string& phase) const SSJOIN_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    auto it = phases_.find(phase);
    return it == phases_.end() ? 0.0 : it->second;
  }

  /// Sum over all phases.
  double TotalSeconds() const SSJOIN_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    double total = 0;
    for (const auto& [_, s] : phases_) total += s;
    return total;
  }

  /// Unsynchronized view; callers must have joined all measuring threads.
  /// That quiescence contract is outside what the analysis can express,
  /// hence the explicit exemption.
  const std::map<std::string, double>& phases() const
      SSJOIN_NO_THREAD_SAFETY_ANALYSIS {
    return phases_;
  }

  void Reset() SSJOIN_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    phases_.clear();
  }

 private:
  mutable util::Mutex mutex_;
  std::map<std::string, double> phases_ SSJOIN_GUARDED_BY(mutex_);
};

// Canonical phase names used by all join drivers (paper Figure 2 steps).
inline constexpr const char* kPhaseSigGen = "SigGen";
inline constexpr const char* kPhaseCandPair = "CandPair";
inline constexpr const char* kPhasePostFilter = "PostFilter";

}  // namespace ssjoin
