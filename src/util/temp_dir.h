// RAII ownership of a unique temporary directory.
//
// The spill layer (core/spill) and several tests create scratch files
// that must never outlive the operation that made them — not on success,
// not on a guard trip, not on an exception unwinding through the stack.
// ScopedTempDir owns one freshly-created directory and removes it (and
// everything inside it) when destroyed, so "zero leaked spill files" is
// a structural guarantee instead of a cleanup convention.

#pragma once

#include <string>
#include <string_view>

#include "util/status.h"

namespace ssjoin::util {

/// \brief A uniquely-named directory that is recursively deleted on
/// destruction.
///
/// Create() makes the directory via mkdtemp under `base` (or the system
/// temp directory when `base` is empty). The object is move-only; a
/// moved-from instance owns nothing and its destructor is a no-op.
/// Destruction removes the tree best-effort (errors are swallowed — a
/// destructor cannot report); call Remove() first when the caller needs
/// the deletion outcome as a Status.
class ScopedTempDir {
 public:
  ScopedTempDir() = default;
  ~ScopedTempDir();

  ScopedTempDir(ScopedTempDir&& other) noexcept;
  ScopedTempDir& operator=(ScopedTempDir&& other) noexcept;
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  /// Creates a new directory `base`/ssjoin-XXXXXX (system temp dir when
  /// `base` is empty). Fails with IOError when the parent is missing or
  /// the directory cannot be created.
  static Result<ScopedTempDir> Create(const std::string& base = "");

  /// Absolute-ish path of the owned directory; empty when moved-from or
  /// already removed.
  const std::string& path() const { return path_; }
  bool valid() const { return !path_.empty(); }

  /// `path()`/`name` — convenience for files inside the directory.
  std::string FilePath(std::string_view name) const;

  /// Recursively deletes the directory now and releases ownership.
  /// Idempotent; returns IOError when entries could not be removed.
  Status Remove();

 private:
  explicit ScopedTempDir(std::string path) : path_(std::move(path)) {}

  std::string path_;
};

}  // namespace ssjoin::util
