// Runtime contract checking for the ssjoin library.
//
// The paper's central claim is *exactness* (Sections 4-5): PartEnum and
// WtEnum must return precisely the pairs satisfying the predicate, so a
// silently out-of-bounds partition index or a violated signature-count
// invariant is a correctness bug, not merely a crash risk. This header
// provides the macros the whole library uses to state such invariants:
//
//   SSJOIN_CHECK(cond, "msg {} {}", a, b)   always-on; aborts on violation
//   SSJOIN_DCHECK(cond, ...)                debug/sanitizer builds only
//   SSJOIN_CHECK_BOUNDS(i, size)            always-on bounds contract
//   SSJOIN_DCHECK_BOUNDS(i, size)           hot-path bounds contract
//   SSJOIN_UNREACHABLE("msg")               marks impossible control flow
//
// Messages are fmt-style: each "{}" in the format string is replaced by the
// next argument (streamed via operator<<). The message arguments of the
// DCHECK variants are never evaluated when DCHECKs are compiled out, so it
// is fine to call expensive diagnostics there.
//
// DCHECKs are enabled when NDEBUG is not defined (Debug / RelWithDebInfo
// by default in this repo) or when SSJOIN_ENABLE_DCHECKS is defined (the
// sanitizer presets define it so that ASan/UBSan/TSan runs exercise every
// contract). Use SSJOIN_DCHECK_IS_ON() to branch on this in tests.
//
// On violation the process prints "file:line CHECK failed: <cond> <msg>"
// to stderr and aborts, which both gtest death tests and the sanitizers'
// abort handlers can observe. This header intentionally depends on nothing
// else in the library so that every module (including util/status.h) can
// include it.

#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

#if !defined(NDEBUG) || defined(SSJOIN_ENABLE_DCHECKS)
#define SSJOIN_DCHECKS_ENABLED 1
#else
#define SSJOIN_DCHECKS_ENABLED 0
#endif

#define SSJOIN_DCHECK_IS_ON() (SSJOIN_DCHECKS_ENABLED != 0)

namespace ssjoin::internal {

/// Terminates the process after printing the failed condition, an optional
/// formatted message, and the failure site as file:line.
[[noreturn]] void CheckFailed(const char* file, int line,
                              const char* condition,
                              const std::string& message);

inline void AppendFormatted(std::ostringstream& os, std::string_view fmt) {
  os << fmt;
}

template <typename Arg, typename... Rest>
void AppendFormatted(std::ostringstream& os, std::string_view fmt,
                     const Arg& arg, const Rest&... rest) {
  size_t pos = fmt.find("{}");
  if (pos == std::string_view::npos) {
    // More arguments than placeholders: append the stragglers so no
    // diagnostic information is silently dropped.
    os << fmt << " " << arg;
    (AppendFormatted(os, "", rest), ...);
    return;
  }
  os << fmt.substr(0, pos) << arg;
  AppendFormatted(os, fmt.substr(pos + 2), rest...);
}

/// Renders an fmt-style message: "{}" placeholders are substituted by the
/// remaining arguments in order, via operator<<.
template <typename... Args>
std::string FormatCheckMessage(std::string_view fmt, const Args&... args) {
  std::ostringstream os;
  AppendFormatted(os, fmt, args...);
  return os.str();
}

inline std::string FormatCheckMessage() { return std::string(); }

/// True iff 0 <= i < n, handling signed and unsigned index types without
/// tautological-comparison warnings.
template <typename I, typename N>
constexpr bool IndexInBounds(I i, N n) {
  if constexpr (static_cast<I>(-1) < static_cast<I>(0)) {  // signed I
    if (i < static_cast<I>(0)) return false;
  }
  return static_cast<uint64_t>(i) < static_cast<uint64_t>(n);
}

}  // namespace ssjoin::internal

/// Always-on invariant. Aborts with file:line and the formatted message if
/// `cond` is false. Use for contracts whose violation would corrupt results
/// (exactness!) and that are not on a per-element hot path.
#define SSJOIN_CHECK(cond, ...)                                            \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      ::ssjoin::internal::CheckFailed(                                     \
          __FILE__, __LINE__, #cond,                                       \
          ::ssjoin::internal::FormatCheckMessage(__VA_ARGS__));            \
    }                                                                      \
  } while (0)

/// Always-on bounds contract: aborts unless 0 <= index < size.
#define SSJOIN_CHECK_BOUNDS(index, size)                                   \
  do {                                                                     \
    auto _ssjoin_i = (index);                                              \
    auto _ssjoin_n = (size);                                               \
    if (!::ssjoin::internal::IndexInBounds(_ssjoin_i, _ssjoin_n))          \
        [[unlikely]] {                                                     \
      ::ssjoin::internal::CheckFailed(                                     \
          __FILE__, __LINE__, #index " < " #size,                          \
          ::ssjoin::internal::FormatCheckMessage(                          \
              "index {} out of bounds [0, {})",                            \
              static_cast<uint64_t>(_ssjoin_i),                            \
              static_cast<uint64_t>(_ssjoin_n)));                          \
    }                                                                      \
  } while (0)

#if SSJOIN_DCHECKS_ENABLED

/// Debug/sanitizer-build invariant; compiled out in Release so it is safe
/// on per-element hot paths (signature generation inner loops, bit vector
/// accessors). Semantics match SSJOIN_CHECK when enabled.
#define SSJOIN_DCHECK(cond, ...) SSJOIN_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)

/// Hot-path bounds contract; compiled out in Release.
#define SSJOIN_DCHECK_BOUNDS(index, size) SSJOIN_CHECK_BOUNDS(index, size)

#else

#define SSJOIN_DCHECK(cond, ...)     \
  do {                               \
    if (false) {                     \
      (void)sizeof((cond) ? 1 : 0); \
    }                                \
  } while (0)

#define SSJOIN_DCHECK_BOUNDS(index, size) \
  do {                                    \
    if (false) {                          \
      (void)sizeof(index);                \
      (void)sizeof(size);                 \
    }                                     \
  } while (0)

#endif  // SSJOIN_DCHECKS_ENABLED

/// Marks control flow the surrounding invariants rule out. Always aborts;
/// never compiled out (an impossible branch that executes is a correctness
/// bug regardless of build type).
#define SSJOIN_UNREACHABLE(...)                                            \
  ::ssjoin::internal::CheckFailed(                                         \
      __FILE__, __LINE__, "unreachable",                                   \
      ::ssjoin::internal::FormatCheckMessage(__VA_ARGS__))
