// Compile-time concurrency discipline for ssjoin (DESIGN.md Section 10).
//
// Two things live here, deliberately in one file:
//
//   1. The SSJOIN_* thread-safety annotation macros, thin wrappers over
//      clang's Thread Safety Analysis attributes. Under clang the whole
//      library builds with -Wthread-safety -Werror=thread-safety, so a
//      guarded field touched without its mutex, or a REQUIRES method
//      called without the capability, is a *build error*. Under gcc the
//      macros expand to nothing and the same code compiles unchanged.
//
//   2. The util::Mutex / util::MutexLock / util::CondVar wrappers over
//      <mutex> and <condition_variable>. They are the only sanctioned
//      mutual-exclusion primitives in src/: the `mutex-wrapper-only`
//      AST lint rule (tools/lint/ssjoin_ast_lint.py) forbids bare
//      std::mutex / std::lock_guard / std::condition_variable anywhere
//      else, so locking can never silently bypass the capability
//      annotations.
//
// How to annotate new shared state (the recipe item 1's server work and
// item 5's operator pipeline must follow):
//
//   class Queue {
//    public:
//     void Push(Item item) SSJOIN_EXCLUDES(mutex_);
//    private:
//     size_t SizeLocked() const SSJOIN_REQUIRES(mutex_);
//     util::Mutex mutex_;
//     std::deque<Item> items_ SSJOIN_GUARDED_BY(mutex_);
//   };
//
// Every mutable member of a class that owns a Mutex must either carry
// SSJOIN_GUARDED_BY(<that mutex>) or an explicit
// `// ssjoin-lint: allow(guarded-by-required)` opt-out with a comment
// explaining why it is safe (thread-confined, internally synchronized,
// written only before threads start). The `guarded-by-required` lint
// rule enforces this, so deleting an annotation fails ctest even on a
// gcc-only machine where the clang analysis cannot run.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

// clang implements the capability attributes; gcc does not. __has_attribute
// keeps this safe on future clangs that might rename them.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SSJOIN_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef SSJOIN_THREAD_ANNOTATION__
#define SSJOIN_THREAD_ANNOTATION__(x)  // not clang: annotations vanish
#endif

/// Declares a class to be a lockable capability ("mutex" names it in
/// diagnostics).
#define SSJOIN_CAPABILITY(x) SSJOIN_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class whose lifetime equals holding a capability.
#define SSJOIN_SCOPED_CAPABILITY SSJOIN_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define SSJOIN_GUARDED_BY(x) SSJOIN_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed while holding `x`.
#define SSJOIN_PT_GUARDED_BY(x) SSJOIN_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function acquires the capability (held on return, not on entry).
#define SSJOIN_ACQUIRE(...) \
  SSJOIN_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on return).
#define SSJOIN_RELEASE(...) \
  SSJOIN_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function may only be called while holding the capability.
#define SSJOIN_REQUIRES(...) \
  SSJOIN_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function may only be called while NOT holding the capability (it will
/// acquire it itself; calling with it held would deadlock).
#define SSJOIN_EXCLUDES(...) \
  SSJOIN_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define SSJOIN_TRY_ACQUIRE(b, ...) \
  SSJOIN_THREAD_ANNOTATION__(try_acquire_capability(b, __VA_ARGS__))

/// Asserts (at runtime, for the analysis) that the capability is held.
#define SSJOIN_ASSERT_CAPABILITY(x) \
  SSJOIN_THREAD_ANNOTATION__(assert_capability(x))

/// Declares which capability a function returns a reference to.
#define SSJOIN_RETURN_CAPABILITY(x) \
  SSJOIN_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function's locking discipline is intentionally
/// outside what the analysis can express (e.g. "caller must have joined
/// all threads"). Always pair with a comment justifying the exemption.
#define SSJOIN_NO_THREAD_SAFETY_ANALYSIS \
  SSJOIN_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace ssjoin::util {

class CondVar;

/// std::mutex as a named capability. All mutual exclusion in src/ goes
/// through this wrapper (lint rule `mutex-wrapper-only`); prefer the
/// RAII MutexLock over manual Lock()/Unlock().
class SSJOIN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SSJOIN_ACQUIRE() { mu_.lock(); }
  void Unlock() SSJOIN_RELEASE() { mu_.unlock(); }
  bool TryLock() SSJOIN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock: holds `mu` from construction to destruction. The scoped
/// capability tells the analysis exactly which mutex is held across the
/// block, so guarded fields may be touched inside it.
class SSJOIN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SSJOIN_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() SSJOIN_RELEASE() {}  // unique_lock_ releases the mutex

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to util::Mutex through MutexLock.
///
/// Wait() atomically releases and reacquires the lock's mutex; the
/// analysis does not model that round trip, so to it the capability is
/// simply held across the call — which is exactly the guarantee the
/// caller observes on both sides of Wait(). Use the classic loop form:
///
///   MutexLock lock(mutex_);
///   while (!predicate_locked()) cv_.Wait(lock);
///
/// (Predicates live in plain `while` conditions, not lambdas, so every
/// guarded read stays inside the MutexLock scope the analysis sees.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Timed wait: returns false on timeout, true when notified. Same
  /// capability story as Wait(); used by the progress heartbeat for an
  /// interruptible sleep (obs/progress.cc).
  bool WaitFor(MutexLock& lock, int64_t micros) {
    return cv_.wait_for(lock.lock_, std::chrono::microseconds(micros)) ==
           std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ssjoin::util
