// timer.h is header-only; this translation unit exists so the build sees a
// stable object for the module and to anchor any future out-of-line code.
#include "util/timer.h"
