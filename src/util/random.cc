#include "util/random.h"


#include "util/check.h"
#include "util/hashing.h"

namespace ssjoin {

Rng::Rng(uint64_t seed, uint64_t stream) {
  // PCG initialization: the stream selector must be odd.
  inc_ = (stream << 1u) | 1u;
  state_ = 0;
  Next32();
  state_ += Mix64(seed);
  Next32();
}

uint32_t Rng::Next32() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Rng::Next64() {
  return (static_cast<uint64_t>(Next32()) << 32) | Next32();
}

uint32_t Rng::Uniform(uint32_t bound) {
  SSJOIN_DCHECK(bound > 0, "Uniform(0) is ill-defined");
  // Lemire's nearly-divisionless unbiased method.
  uint64_t m = static_cast<uint64_t>(Next32()) * bound;
  uint32_t low = static_cast<uint32_t>(m);
  if (low < bound) {
    uint32_t threshold = -bound % bound;
    while (low < threshold) {
      m = static_cast<uint64_t>(Next32()) * bound;
      low = static_cast<uint32_t>(m);
    }
  }
  return static_cast<uint32_t>(m >> 32);
}

uint32_t Rng::UniformRange(uint32_t lo, uint32_t hi) {
  SSJOIN_DCHECK(lo <= hi, "UniformRange requires lo <= hi (got [{}, {}])",
                lo, hi);
  uint32_t span = hi - lo + 1;
  if (span == 0) return Next32();  // full 32-bit range
  return lo + Uniform(span);
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

std::vector<uint32_t> RandomPermutation(uint32_t n, Rng& rng) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (uint32_t i = n; i > 1; --i) {
    uint32_t j = rng.Uniform(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k,
                                               Rng& rng) {
  SSJOIN_CHECK(k <= n,
               "cannot sample {} distinct values from a domain of {}", k, n);
  // Floyd's algorithm: O(k) expected insertions, no O(n) scratch.
  std::vector<uint32_t> out;
  out.reserve(k);
  for (uint32_t j = n - k; j < n; ++j) {
    uint32_t t = rng.Uniform(j + 1);
    bool seen = false;
    for (uint32_t v : out) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  return out;
}

}  // namespace ssjoin
