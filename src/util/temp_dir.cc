#include "util/temp_dir.h"

#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

namespace ssjoin::util {

namespace fs = std::filesystem;

ScopedTempDir::~ScopedTempDir() {
  // Destructors cannot report; the explicit Remove() path exists for
  // callers that need the outcome.
  (void)Remove();  // ssjoin-lint: allow(status-must-use)
}

ScopedTempDir::ScopedTempDir(ScopedTempDir&& other) noexcept
    : path_(std::move(other.path_)) {
  other.path_.clear();
}

ScopedTempDir& ScopedTempDir::operator=(ScopedTempDir&& other) noexcept {
  if (this != &other) {
    (void)Remove();  // ssjoin-lint: allow(status-must-use)
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

Result<ScopedTempDir> ScopedTempDir::Create(const std::string& base) {
  std::error_code ec;
  fs::path parent = base.empty() ? fs::temp_directory_path(ec) : fs::path(base);
  if (ec) {
    return Status::IOError("temp dir: cannot resolve system temp path: " +
                           ec.message());
  }
  std::string tmpl = (parent / "ssjoin-XXXXXX").string();
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    return Status::IOError("temp dir: mkdtemp failed for " + tmpl);
  }
  return ScopedTempDir(std::string(buf.data()));
}

std::string ScopedTempDir::FilePath(std::string_view name) const {
  return (fs::path(path_) / fs::path(name)).string();
}

Status ScopedTempDir::Remove() {
  if (path_.empty()) return Status::OK();
  std::string path = std::move(path_);
  path_.clear();
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) {
    return Status::IOError("temp dir: failed to remove " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

}  // namespace ssjoin::util
