// AMS (Alon–Matias–Szegedy) sketch for estimating the second frequency
// moment F2 of a stream.
//
// Paper Section 3.2 uses the intermediate-result size
//   sum_r |Sign(r)| + sum_s |Sign(s)| + sum_(r,s) |Sign(r) ∩ Sign(s)|
// as the primary implementation-independent performance measure, notes that
// for self-joins it is within a factor 2 of the F2 measure of the signature
// multiset, and points to [1] (AMS, STOC'96) for estimating F2 with limited
// memory. The parameter advisor (core/parameter_advisor.h) uses this sketch
// to pick optimal PartEnum (n1, n2) and LSH (g, l) without materializing
// the full signature join.

#pragma once

#include <cstdint>
#include <vector>

namespace ssjoin {

/// \brief Streaming F2 estimator.
///
/// Uses the classic construction: `depth` independent estimators, each the
/// square of a +/-1-weighted running sum; estimators are averaged in groups
/// of `width` and the group means are combined by median for robustness
/// (median-of-means). Each item's +/-1 weight comes from a seeded 4-wise-
/// independent-enough mixing hash.
class AmsSketch {
 public:
  /// \param width  number of averaged estimators per group (variance).
  /// \param depth  number of groups combined by median (confidence).
  /// \param seed   hash-family seed; fixed seed => reproducible estimates.
  AmsSketch(int width = 16, int depth = 5, uint64_t seed = 0xA5A5);

  /// Processes one stream item (a signature hash) with frequency +1.
  void Add(uint64_t item);

  /// Processes one stream item with an arbitrary positive multiplicity.
  void AddWithCount(uint64_t item, int64_t count);

  /// Current estimate of F2 = sum_v freq(v)^2.
  double Estimate() const;

  /// Number of items added (with multiplicity).
  int64_t item_count() const { return items_; }

  int width() const { return width_; }
  int depth() const { return depth_; }

 private:
  int width_;
  int depth_;
  uint64_t seed_;
  int64_t items_ = 0;
  std::vector<int64_t> counters_;  // width_ * depth_ running signed sums
};

/// Exact F2 of a list of items (sum over distinct values of count^2).
/// O(n) time, O(distinct) space; used to validate the sketch and for small
/// inputs.
double ExactF2(const std::vector<uint64_t>& items);

}  // namespace ssjoin
