// Zipf-distributed sampling.
//
// Real token domains (words in addresses, bibliographic titles) are highly
// skewed; element frequency drives both the prefix-filter baseline (which
// orders by rarity) and WtEnum's IDF weights. The synthetic data
// generators use this sampler to reproduce that skew.

#pragma once

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace ssjoin {

/// \brief Samples from {0..n-1} with P(k) proportional to 1/(k+1)^theta.
///
/// Precomputes the cumulative distribution once (O(n)), then samples by
/// binary search (O(log n)). theta = 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(uint32_t n, double theta);

  uint32_t Sample(Rng& rng) const;

  uint32_t domain_size() const { return n_; }
  double theta() const { return theta_; }

  /// Exact probability of value k under this distribution.
  double Probability(uint32_t k) const;

 private:
  uint32_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace ssjoin
