#include "util/hashing.h"

namespace ssjoin {

uint64_t HashSpan(std::span<const uint32_t> values, uint64_t seed) {
  SequenceHasher hasher(seed);
  hasher.AddSpan(values);
  return hasher.Finish();
}

uint32_t HashStringToken(std::string_view token) {
  // FNV-1a 32-bit.
  uint32_t h = 0x811c9dc5u;
  for (unsigned char c : token) {
    h ^= c;
    h *= 0x01000193u;
  }
  // Final avalanche so that low-entropy tokens spread over the domain.
  uint64_t mixed = Mix64(h);
  return static_cast<uint32_t>(mixed ^ (mixed >> 32));
}

}  // namespace ssjoin
