// Status / Result error model for the ssjoin library.
//
// Public APIs that can fail return Status (or Result<T> when they also
// produce a value) instead of throwing exceptions, following the
// Arrow/RocksDB convention for database-systems C++.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/check.h"

namespace ssjoin {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kNotImplemented,
  kInternal,
  // Guardrail trips (core/execution_guard.h): the run was aborted by an
  // execution budget rather than failing on bad input.
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation that can fail.
///
/// A Status is cheap to copy in the OK case (no allocation). Failed
/// statuses carry a code and a message. Statuses must be checked; the
/// SSJOIN_RETURN_NOT_OK macro propagates failures up the call chain.
///
/// The class-level [[nodiscard]] makes *every* function returning a
/// Status warn (error under -Werror / the CI matrix) when the result is
/// dropped on the floor — a discarded guard trip or IO failure is a
/// swallowed error. Use SSJOIN_RETURN_NOT_OK / assign / branch; in the
/// rare case a failure is genuinely ignorable, write
/// `(void)Call();  // ssjoin-lint: allow(status-must-use)` with a
/// justification so both the compiler and the AST lint see intent.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief A value or an error.
///
/// Result<T> either holds a T (status().ok()) or a non-OK Status.
/// Dereferencing a failed Result is a programming error (assert).
/// [[nodiscard]] for the same reason as Status: discarding one hides
/// the failure it may carry.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  /// Implicit from status: failure. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    SSJOIN_CHECK(!status_.ok(),
                 "Result constructed from OK status without a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SSJOIN_CHECK(ok(), "value() on failed Result: {}", status_.ToString());
    return *value_;
  }
  T& value() & {
    SSJOIN_CHECK(ok(), "value() on failed Result: {}", status_.ToString());
    return *value_;
  }
  T&& value() && {
    SSJOIN_CHECK(ok(), "value() on failed Result: {}", status_.ToString());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `fallback` if this Result is an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status out of the current function.
#define SSJOIN_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::ssjoin::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

#define SSJOIN_CONCAT_IMPL(a, b) a##b
#define SSJOIN_CONCAT(a, b) SSJOIN_CONCAT_IMPL(a, b)

#define SSJOIN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

/// Evaluates a Result expression; on failure returns its Status, on
/// success assigns the value to `lhs`.
#define SSJOIN_ASSIGN_OR_RETURN(lhs, rexpr) \
  SSJOIN_ASSIGN_OR_RETURN_IMPL(SSJOIN_CONCAT(_res_, __LINE__), lhs, rexpr)

}  // namespace ssjoin
