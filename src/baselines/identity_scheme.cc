#include "baselines/identity_scheme.h"

namespace ssjoin {

void IdentityScheme::Generate(std::span<const ElementId> set,
                              std::vector<Signature>* out) const {
  out->reserve(out->size() + set.size());
  for (ElementId e : set) {
    out->push_back(static_cast<Signature>(e));
  }
}

}  // namespace ssjoin
