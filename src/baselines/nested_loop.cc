#include "baselines/nested_loop.h"

namespace ssjoin {

std::vector<SetPair> NestedLoopJoin(const SetCollection& r,
                                    const SetCollection& s,
                                    const Predicate& predicate) {
  std::vector<SetPair> out;
  for (SetId i = 0; i < r.size(); ++i) {
    for (SetId j = 0; j < s.size(); ++j) {
      if (predicate.Evaluate(r.set(i), s.set(j))) {
        out.emplace_back(i, j);
      }
    }
  }
  return out;  // loop order is already sorted
}

std::vector<SetPair> NestedLoopSelfJoin(const SetCollection& input,
                                        const Predicate& predicate) {
  std::vector<SetPair> out;
  for (SetId i = 0; i < input.size(); ++i) {
    for (SetId j = i + 1; j < input.size(); ++j) {
      if (predicate.Evaluate(input.set(i), input.set(j))) {
        out.emplace_back(i, j);
      }
    }
  }
  return out;
}

}  // namespace ssjoin
