// LSH-based signature scheme (paper Section 3.3, algorithms of [8,15,19]).
//
// For jaccard SSJoins, each signature is a concatenation of g minhashes
// and there are l such signatures. A pair with Js = gamma shares at least
// one signature with probability 1 - (1 - gamma^g)^l; to achieve a false
// negative rate of delta at similarity gamma, l ≈ (1/gamma^g) ln(1/delta)
// repetitions suffice (the paper's formula). LSH is *approximate*: missed
// pairs are expected by design — IsExact() returns false and the test
// suite asserts observed recall against the configured rate instead of
// exactness.
//
// The weighted variant concatenates weighted minhashes and serves the
// Figure 19 weighted-jaccard experiments.

#pragma once

#include <cmath>
#include <memory>

#include "baselines/minhash.h"
#include "core/signature_scheme.h"
#include "core/weighted.h"
#include "util/status.h"

namespace ssjoin {

/// LSH tuning knobs.
struct LshParams {
  /// Minhashes concatenated per signature (the paper's g). Controls
  /// filtering effectiveness.
  uint32_t g = 3;
  /// Number of signatures per set (the paper's l). Controls the false
  /// negative rate for fixed g.
  uint32_t l = 10;
  uint64_t seed = 0x9E3779B9;

  /// Probability that a pair with jaccard similarity `js` shares at least
  /// one signature: 1 - (1 - js^g)^l.
  double CollisionProbability(double js) const {
    return 1.0 - std::pow(1.0 - std::pow(js, g), l);
  }

  /// The l achieving false-negative rate `delta` at threshold `gamma` for
  /// the given g (paper Section 3.3: l = (1/gamma^g) log(1/delta), here in
  /// the exact form l = ceil(ln(delta) / ln(1 - gamma^g))).
  static uint32_t RequiredRepetitions(double gamma, double delta, uint32_t g);

  /// Parameters achieving false-negative rate `delta` at threshold
  /// `gamma` with the given g.
  static LshParams ForAccuracy(double gamma, double delta, uint32_t g,
                               uint64_t seed = 0x9E3779B9);
};

/// \brief Classic minhash LSH scheme for (unweighted) jaccard.
class LshScheme final : public SignatureScheme {
 public:
  static Result<LshScheme> Create(const LshParams& params);

  std::string Name() const override;
  bool IsExact() const override { return false; }

  void Generate(std::span<const ElementId> set,
                std::vector<Signature>* out) const override;

  const LshParams& params() const { return params_; }

 private:
  LshScheme(const LshParams& params);

  LshParams params_;
  std::unique_ptr<MinHasher> hasher_;
};

/// \brief Weighted-jaccard LSH via weighted minhashes. Element weights
/// come from a WeightFunction shared by both join sides (e.g. IDF).
class WeightedLshScheme final : public SignatureScheme {
 public:
  static Result<WeightedLshScheme> Create(const LshParams& params,
                                          WeightFunction weights);

  std::string Name() const override;
  bool IsExact() const override { return false; }

  void Generate(std::span<const ElementId> set,
                std::vector<Signature>* out) const override;

 private:
  WeightedLshScheme(const LshParams& params, WeightFunction weights);

  LshParams params_;
  WeightFunction weights_;
  std::unique_ptr<WeightedMinHasher> hasher_;
};

}  // namespace ssjoin
