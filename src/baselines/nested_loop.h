// Brute-force exact SSJoin.
//
// O(|R| * |S|) pairwise evaluation of the predicate. Not an algorithm from
// the paper — it is the ground truth every signature scheme's output is
// validated against in the test suite, and the "quadratic lower bound"
// reference point in scaling discussions.

#pragma once

#include <vector>

#include "core/predicate.h"
#include "core/types.h"
#include "data/collection.h"

namespace ssjoin {

/// All pairs (r, s) in R x S with pred(r, s), sorted.
std::vector<SetPair> NestedLoopJoin(const SetCollection& r,
                                    const SetCollection& s,
                                    const Predicate& predicate);

/// All pairs (a, b), a < b, within `input` with pred(a, b), sorted.
std::vector<SetPair> NestedLoopSelfJoin(const SetCollection& input,
                                        const Predicate& predicate);

}  // namespace ssjoin
