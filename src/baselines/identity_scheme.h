// The identity signature scheme (paper Section 3.3).
//
// Sign(s) = s: every element of the set is a signature. This is the
// conceptual signature scheme behind the Probe-Count and Pair-Count
// algorithms of Sarawagi & Kirpal [22]. Two sets become a candidate pair
// iff they share at least one element — complete for every predicate that
// requires a positive intersection, but with the poorest filtering
// effectiveness of all schemes (frequent elements generate huge candidate
// buckets), which is exactly the behaviour the paper's comparison sections
// rely on.
//
// The dedicated inverted-index implementations (with count thresholds and
// early termination) live in baselines/probe_count.h; this adapter exists
// to run the identity scheme through the shared Figure-2 driver for
// apples-to-apples F2 accounting.

#pragma once

#include "core/signature_scheme.h"

namespace ssjoin {

class IdentityScheme final : public SignatureScheme {
 public:
  IdentityScheme() = default;

  std::string Name() const override { return "Identity"; }

  void Generate(std::span<const ElementId> set,
                std::vector<Signature>* out) const override;
};

}  // namespace ssjoin
