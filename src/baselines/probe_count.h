// Probe-Count and Pair-Count (Sarawagi & Kirpal [22]).
//
// The previous exact algorithms the paper compares against conceptually
// (Section 3.3: identity signature scheme). Both build an inverted index
// mapping elements to the sets containing them:
//   - Pair-Count accumulates, for each probe set, the exact overlap count
//     with every set sharing an element (a hash-map counter over the
//     probe's postings), then applies the predicate to the counts.
//   - Probe-Count avoids counting through the longest lists: with overlap
//     threshold t, at most t-1 postings lists are designated "long"; every
//     qualifying partner must appear in a short list, so candidates are
//     gathered from short lists only and completed by binary-searching the
//     long lists (the MergeOpt strategy of [22]).
//
// Both are exact and monolithic (not run through the Figure-2 driver);
// their stats map the phases as: SigGen = index construction, CandPair =
// counting/merging, PostFilter = predicate evaluation on counts.

#pragma once

#include "core/predicate.h"
#include "core/ssjoin.h"
#include "data/collection.h"

namespace ssjoin {

struct InvertedIndexJoinOptions {
  /// Skip partners whose size is outside predicate.JoinableSizes — the
  /// size-based filtering of Section 5 applied at count time.
  bool size_filter = true;
};

/// Pair-Count self-join: exact counts via per-probe hash-map counters.
JoinResult PairCountSelfJoin(const SetCollection& input,
                             const Predicate& predicate,
                             const InvertedIndexJoinOptions& options = {});

/// Probe-Count self-join: MergeOpt short/long list split per probe.
JoinResult ProbeCountSelfJoin(const SetCollection& input,
                              const Predicate& predicate,
                              const InvertedIndexJoinOptions& options = {});

/// Pair-Count binary join (index R, probe S).
JoinResult PairCountJoin(const SetCollection& r, const SetCollection& s,
                         const Predicate& predicate,
                         const InvertedIndexJoinOptions& options = {});

}  // namespace ssjoin
