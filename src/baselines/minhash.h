// Minwise hashing.
//
// The probabilistic foundation of the LSH baseline (paper Section 3.3):
// for a random hash h, P[ min_h(r) == min_h(s) ] = Js(r, s). A family of
// independent seeded hashes yields independent minhash coordinates.
//
// The weighted variant uses exponentially-distributed "clocks"
// t_e = -ln(U_e) / w(e) with shared per-element uniforms; the argmin is a
// weight-proportional consistent sample, giving collision probability
// close to the weighted jaccard similarity (the classic approximation
// behind weighted-LSH; exactness of recall is verified empirically, as in
// the paper's Section 8 setup).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/collection.h"

namespace ssjoin {

/// \brief A family of `count` independent minhash functions.
class MinHasher {
 public:
  MinHasher(uint32_t count, uint64_t seed);

  /// Number of hash functions in the family.
  uint32_t count() const { return count_; }

  /// The i-th minhash of `set` (i < count()). For the empty set returns a
  /// fixed sentinel so empty sets agree with each other.
  uint64_t MinHash(std::span<const ElementId> set, uint32_t i) const;

  /// All `count` minhashes of `set`.
  std::vector<uint64_t> MinHashes(std::span<const ElementId> set) const;

 private:
  uint32_t count_;
  std::vector<uint64_t> seeds_;
};

/// \brief Weighted minhash family (exponential-clock construction).
class WeightedMinHasher {
 public:
  WeightedMinHasher(uint32_t count, uint64_t seed);

  uint32_t count() const { return count_; }

  /// The i-th weighted minhash: argmin_e -ln(U_i(e)) / w(e).
  /// `weights` parallels `set`; weights must be > 0.
  uint64_t MinHash(std::span<const ElementId> set,
                   std::span<const double> weights, uint32_t i) const;

 private:
  uint32_t count_;
  std::vector<uint64_t> seeds_;
};

}  // namespace ssjoin
