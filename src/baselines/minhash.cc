#include "baselines/minhash.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/hashing.h"
#include "util/random.h"

namespace ssjoin {

namespace {
constexpr uint64_t kEmptySetMinhash = 0xE397'7A5E'7000'0001ULL;
}  // namespace

MinHasher::MinHasher(uint32_t count, uint64_t seed) : count_(count) {
  SSJOIN_CHECK(count > 0, "MinHasher needs at least one hash function");
  Rng rng(seed);
  seeds_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) seeds_.push_back(rng.Next64());
}

uint64_t MinHasher::MinHash(std::span<const ElementId> set,
                            uint32_t i) const {
  SSJOIN_DCHECK_BOUNDS(i, count_);
  if (set.empty()) return kEmptySetMinhash;
  uint64_t best_key = std::numeric_limits<uint64_t>::max();
  ElementId best_e = 0;
  for (ElementId e : set) {
    uint64_t key = SeededHash32(e, seeds_[i]);
    if (key < best_key) {
      best_key = key;
      best_e = e;
    }
  }
  return best_e;
}

std::vector<uint64_t> MinHasher::MinHashes(
    std::span<const ElementId> set) const {
  std::vector<uint64_t> out(count_);
  for (uint32_t i = 0; i < count_; ++i) out[i] = MinHash(set, i);
  return out;
}

WeightedMinHasher::WeightedMinHasher(uint32_t count, uint64_t seed)
    : count_(count) {
  SSJOIN_CHECK(count > 0,
               "WeightedMinHasher needs at least one hash function");
  Rng rng(seed);
  seeds_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) seeds_.push_back(rng.Next64());
}

uint64_t WeightedMinHasher::MinHash(std::span<const ElementId> set,
                                    std::span<const double> weights,
                                    uint32_t i) const {
  SSJOIN_DCHECK_BOUNDS(i, count_);
  SSJOIN_CHECK(set.size() == weights.size(),
               "{} elements but {} weights", set.size(), weights.size());
  if (set.empty()) return kEmptySetMinhash;
  double best_clock = std::numeric_limits<double>::infinity();
  ElementId best_e = 0;
  for (size_t p = 0; p < set.size(); ++p) {
    SSJOIN_DCHECK(weights[p] > 0,
                  "exponential-clock minhash needs positive weights "
                  "(element {} has weight {})", set[p], weights[p]);
    // U in (0, 1], derived from the shared per-element hash so that both
    // sets draw the same uniform for the same element.
    uint64_t h = SeededHash32(set[p], seeds_[i]);
    double u = (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
    double clock = -std::log(u) / weights[p];
    if (clock < best_clock) {
      best_clock = clock;
      best_e = set[p];
    }
  }
  return best_e;
}

}  // namespace ssjoin
