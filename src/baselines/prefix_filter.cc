#include "baselines/prefix_filter.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/check.h"
#include "util/hashing.h"

namespace ssjoin {

Result<PrefixFilterScheme> PrefixFilterScheme::Create(
    std::shared_ptr<const Predicate> predicate, const SetCollection& input,
    const PrefixFilterParams& params) {
  return CreateImpl(std::move(predicate), {&input}, params);
}

Result<PrefixFilterScheme> PrefixFilterScheme::Create(
    std::shared_ptr<const Predicate> predicate, const SetCollection& r,
    const SetCollection& s, const PrefixFilterParams& params) {
  return CreateImpl(std::move(predicate), {&r, &s}, params);
}

Result<PrefixFilterScheme> PrefixFilterScheme::CreateImpl(
    std::shared_ptr<const Predicate> predicate,
    const std::vector<const SetCollection*>& inputs,
    const PrefixFilterParams& params) {
  if (!predicate) {
    return Status::InvalidArgument("PrefixFilter: predicate is null");
  }
  PrefixFilterScheme scheme;
  scheme.predicate_ = std::move(predicate);
  scheme.params_ = params;

  // Global element frequencies over R ∪ S (paper Section 3.3), plus the
  // set sizes that actually occur (only those need valid prefix lengths).
  std::unordered_map<ElementId, uint32_t> freq;
  std::vector<bool> size_present;
  for (const SetCollection* input : inputs) {
    scheme.max_set_size_ =
        std::max(scheme.max_set_size_, input->max_set_size());
    size_present.resize(scheme.max_set_size_ + 1, false);
    for (SetId id = 0; id < input->size(); ++id) {
      size_present[input->set_size(id)] = true;
      for (ElementId e : input->set(id)) ++freq[e];
    }
  }

  // Rarity ranks: ascending frequency, ties broken by element id
  // ("arbitrarily but consistently").
  std::vector<std::pair<uint32_t, ElementId>> order;
  order.reserve(freq.size());
  for (const auto& [e, f] : freq) order.emplace_back(f, e);
  std::sort(order.begin(), order.end());
  scheme.rank_.reserve(order.size());
  for (uint32_t r = 0; r < order.size(); ++r) {
    scheme.rank_.emplace(order[r].second, r);
  }

  // Per-size prefix lengths from the predicate's overlap thresholds. The
  // minimum runs over partner sizes that actually occur in the input —
  // for equi-sized inputs this recovers the paper's Section 3.3 analysis
  // (size 20, gamma 0.8 => overlap >= 18 => three-element prefixes).
  scheme.prefix_len_.assign(scheme.max_set_size_ + 1, 0);
  for (uint32_t size = 1; size <= scheme.max_set_size_; ++size) {
    double t = std::numeric_limits<double>::infinity();
    std::optional<SizeRange> range = scheme.predicate_->JoinableSizes(
        size, scheme.max_set_size_ * 2 + 16);
    if (range) {
      uint32_t hi = std::min(range->hi, scheme.max_set_size_);
      for (uint32_t partner = range->lo; partner <= hi; ++partner) {
        if (!size_present[partner]) continue;
        t = std::min(t, scheme.predicate_->MinOverlap(size, partner));
      }
    }
    if (std::isinf(t)) {
      scheme.prefix_len_[size] = 1;  // size joins nothing; emit minimal
      continue;
    }
    // Integer overlaps: the effective threshold is ceil(t). Only t <= 0
    // (a genuinely zero-overlap join) defeats prefix filtering — and only
    // for set sizes that actually occur in the input.
    uint32_t t_int = static_cast<uint32_t>(std::ceil(std::max(t, 0.0) - 1e-9));
    if (t_int < 1) {
      if (!params.allow_zero_overlap_loss && size_present[size]) {
        return Status::InvalidArgument(
            "PrefixFilter: predicate admits zero-overlap joins at set size " +
            std::to_string(size) +
            "; prefix filtering would be incomplete (set "
            "allow_zero_overlap_loss to accept)");
      }
      t_int = 1;
    }
    uint32_t h = size >= t_int ? size - t_int + 1 : 1;
    scheme.prefix_len_[size] = std::min(h, size);
    SSJOIN_CHECK(scheme.prefix_len_[size] >= 1 &&
                     scheme.prefix_len_[size] <= size,
                 "prefix length {} for set size {} outside [1, size]",
                 scheme.prefix_len_[size], size);
  }

  // Size intervals for size-based filtering (Section 5 applied to PF, as
  // in the paper's experimental setup).
  scheme.interval_of_.assign(scheme.max_set_size_ + 1, 0);
  if (params.size_filter && scheme.max_set_size_ > 0) {
    std::vector<SizeRange> intervals =
        BuildJoinableSizeIntervals(*scheme.predicate_, scheme.max_set_size_);
    for (uint32_t idx = 0; idx < intervals.size(); ++idx) {
      for (uint32_t size = intervals[idx].lo;
           size <= std::min(intervals[idx].hi, scheme.max_set_size_);
           ++size) {
        scheme.interval_of_[size] = idx;
      }
    }
  }
  return scheme;
}

std::string PrefixFilterScheme::Name() const {
  std::ostringstream os;
  os << "PF(" << predicate_->Name()
     << (params_.size_filter ? ",size-filtered" : "") << ")";
  return os.str();
}

uint32_t PrefixFilterScheme::PrefixLength(uint32_t size) const {
  SSJOIN_CHECK_BOUNDS(size, prefix_len_.size());
  return prefix_len_[size];
}

uint64_t PrefixFilterScheme::Rank(ElementId e) const {
  auto it = rank_.find(e);
  // Unseen elements sort after all seen ones, ordered by id.
  if (it == rank_.end()) return (1ULL << 32) + e;
  return it->second;
}

void PrefixFilterScheme::Generate(std::span<const ElementId> set,
                                  std::vector<Signature>* out) const {
  if (set.empty()) return;  // prefix filtering cannot cover empty sets
  uint32_t size = static_cast<uint32_t>(set.size());
  SSJOIN_CHECK(size <= max_set_size_,
               "set of {} elements exceeds the indexed maximum {}; "
               "prefix lengths are only valid for indexed sizes",
               size, max_set_size_);

  // Order the set's elements rarest-first and take the prefix.
  std::vector<std::pair<uint64_t, ElementId>> by_rank;
  by_rank.reserve(set.size());
  for (ElementId e : set) by_rank.emplace_back(Rank(e), e);
  std::sort(by_rank.begin(), by_rank.end());
  uint32_t h = prefix_len_[size];
  SSJOIN_DCHECK(h >= 1 && h <= by_rank.size(),
                "prefix length {} outside [1, {}]", h, by_rank.size());

  for (uint32_t p = 0; p < h; ++p) {
    ElementId e = by_rank[p].second;
    if (!params_.size_filter) {
      out->push_back(static_cast<Signature>(e));
      continue;
    }
    // Tag with interval indices i and i+1 (Figure 6 applied to PF).
    uint32_t i = interval_of_[size];
    for (uint32_t tag : {i, i + 1}) {
      out->push_back(HashCombine(Mix64(tag + 1), Mix64(e)));
    }
  }
}

// ---------------------------------------------------------------------------
// WeightedPrefixFilterScheme

Result<WeightedPrefixFilterScheme> WeightedPrefixFilterScheme::Create(
    double gamma, WeightFunction weights, const SetCollection& input,
    double min_weighted_size, const PrefixFilterParams& params) {
  if (gamma <= 0 || gamma > 1) {
    return Status::InvalidArgument(
        "WeightedPrefixFilter: gamma must be in (0,1]");
  }
  if (!weights) {
    return Status::InvalidArgument(
        "WeightedPrefixFilter: weight function is null");
  }
  if (params.size_filter && min_weighted_size <= 0) {
    return Status::InvalidArgument(
        "WeightedPrefixFilter: min_weighted_size must be positive");
  }
  WeightedPrefixFilterScheme scheme;
  scheme.gamma_ = gamma;
  scheme.weights_ = std::move(weights);
  scheme.params_ = params;
  scheme.base_size_ = min_weighted_size * (1.0 - 1e-9);
  scheme.growth_ = (1.0 / gamma) * (1.0 + 1e-9);

  std::unordered_map<ElementId, uint32_t> freq;
  for (SetId id = 0; id < input.size(); ++id) {
    for (ElementId e : input.set(id)) ++freq[e];
  }
  std::vector<std::pair<uint32_t, ElementId>> order;
  order.reserve(freq.size());
  for (const auto& [e, f] : freq) order.emplace_back(f, e);
  std::sort(order.begin(), order.end());
  scheme.rank_.reserve(order.size());
  for (uint32_t r = 0; r < order.size(); ++r) {
    scheme.rank_.emplace(order[r].second, r);
  }
  return scheme;
}

std::string WeightedPrefixFilterScheme::Name() const {
  std::ostringstream os;
  os << "WPF(wjaccard>=" << gamma_ << ")";
  return os.str();
}

uint32_t WeightedPrefixFilterScheme::IntervalIndex(
    double weighted_size) const {
  uint32_t index = 0;
  double boundary = base_size_ * growth_;
  while (boundary <= weighted_size) {
    ++index;
    boundary *= growth_;
  }
  return index;
}

void WeightedPrefixFilterScheme::Generate(
    std::span<const ElementId> set, std::vector<Signature>* out) const {
  if (set.empty()) return;
  // Order rarest-first under the global frequency ranking.
  std::vector<std::pair<uint64_t, ElementId>> by_rank;
  by_rank.reserve(set.size());
  for (ElementId e : set) {
    auto it = rank_.find(e);
    uint64_t r = it == rank_.end() ? (1ULL << 32) + e : it->second;
    by_rank.emplace_back(r, e);
  }
  std::sort(by_rank.begin(), by_rank.end());

  double total = 0;
  for (ElementId e : set) total += weights_(e);
  // Smallest head with suffix weight < gamma * w(s) (see header).
  double required = gamma_ * total * (1.0 - 1e-9);
  double suffix = total;
  size_t prefix_len = 0;
  while (prefix_len < by_rank.size() && suffix >= required) {
    suffix -= weights_(by_rank[prefix_len].second);
    ++prefix_len;
  }

  SSJOIN_DCHECK(prefix_len >= 1,
                "non-empty set produced an empty weighted prefix "
                "(total weight {}, required {})", total, required);
  uint32_t interval = params_.size_filter ? IntervalIndex(total) : 0;
  for (size_t p = 0; p < prefix_len; ++p) {
    ElementId e = by_rank[p].second;
    if (!params_.size_filter) {
      out->push_back(HashCombine(0x57E1'67ED, Mix64(e)));
      continue;
    }
    for (uint32_t tag : {interval, interval + 1}) {
      out->push_back(HashCombine(Mix64(tag + 1) ^ 0x57E1'67ED, Mix64(e)));
    }
  }
}

}  // namespace ssjoin
