// Prefix filter (Chaudhuri, Ganti, Kaushik [6]) — the best previous exact
// algorithm (paper Section 3.3), augmented with size-based filtering
// exactly as the paper's experimental setup describes (Section 8: "we
// augmented it with size-based filtering of Section 5").
//
// Signature scheme: order all elements by ascending global frequency in
// (R ∪ S), ties broken consistently. For a set s whose joinable pairs must
// intersect in at least t(s) elements, Sign(s) is the |s| - ceil(t(s)) + 1
// rarest elements of s — the classic prefix-filtering lemma guarantees two
// joinable sets share a prefix element. With size filtering on, each
// prefix element is tagged with the set's size-interval index (emitted for
// intervals i and i+1, as in Figure 6), so sets of incompatible sizes
// cannot collide.
//
// Limitation (inherent to prefix filtering): predicates that can be
// satisfied with an empty intersection (t(s) < 1) cannot be filtered; for
// such sets the scheme clamps t to 1, which silently drops zero-overlap
// matches. Create() rejects predicates where this occurs unless
// `allow_zero_overlap_loss` is set.

#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/predicate.h"
#include "core/signature_scheme.h"
#include "core/weighted.h"
#include "data/collection.h"
#include "util/status.h"

namespace ssjoin {

struct PrefixFilterParams {
  /// Apply Section 5 size-based filtering (interval tags). The paper's
  /// experiments always enable this — the unaugmented original "was very
  /// poor relative to LSH and our algorithms".
  bool size_filter = true;
  /// Accept predicates for which some set sizes admit zero-overlap joins
  /// (see the limitation note above).
  bool allow_zero_overlap_loss = false;
  uint64_t seed = 0x9E3779B9;
};

/// \brief Prefix-filter signature scheme.
class PrefixFilterScheme final : public SignatureScheme {
 public:
  /// Builds the scheme for a self-join over `input`. Element frequencies
  /// and the size-interval table are computed from `input`; `predicate`
  /// supplies the per-size overlap thresholds.
  static Result<PrefixFilterScheme> Create(
      std::shared_ptr<const Predicate> predicate, const SetCollection& input,
      const PrefixFilterParams& params = {});

  /// Binary-join variant: frequencies over R ∪ S.
  static Result<PrefixFilterScheme> Create(
      std::shared_ptr<const Predicate> predicate, const SetCollection& r,
      const SetCollection& s, const PrefixFilterParams& params = {});

  std::string Name() const override;

  void Generate(std::span<const ElementId> set,
                std::vector<Signature>* out) const override;

  /// Prefix length used for sets of the given size (paper Section 3.3's
  /// "h"). Exposed for tests.
  uint32_t PrefixLength(uint32_t size) const;

  /// Global rarity rank of an element (0 = rarest). Unseen elements rank
  /// after all seen ones.
  uint64_t Rank(ElementId e) const;

 private:
  PrefixFilterScheme() = default;

  static Result<PrefixFilterScheme> CreateImpl(
      std::shared_ptr<const Predicate> predicate,
      const std::vector<const SetCollection*>& inputs,
      const PrefixFilterParams& params);

  std::shared_ptr<const Predicate> predicate_;
  PrefixFilterParams params_;
  uint32_t max_set_size_ = 0;
  std::unordered_map<ElementId, uint32_t> rank_;  // element -> rarity rank
  std::vector<uint32_t> prefix_len_;   // indexed by set size, 0..max
  std::vector<uint32_t> interval_of_;  // size -> interval index
};

/// \brief Weighted-jaccard prefix filter (the PF baseline of the paper's
/// Figure 19 experiments).
///
/// Elements are ordered rarest-first (equivalently by descending IDF).
/// For a set s, any partner with weighted jaccard >= gamma must share
/// weighted intersection >= gamma * w(s) (weighted Lemma 1), so the
/// signature prefix is the smallest head H of s with
/// w(s) - w(H) < gamma * w(s): if the globally-first shared element were
/// outside the prefix, the whole intersection would fit in the suffix,
/// contradicting the bound. Size-based filtering tags each prefix element
/// with the set's weighted-size interval (geometric with ratio 1/gamma),
/// as in WtEnum's jaccard mode.
class WeightedPrefixFilterScheme final : public SignatureScheme {
 public:
  /// `min_weighted_size` must be a positive lower bound on the weighted
  /// size of every nonempty input set (anchors the interval tags; ignored
  /// when size_filter is false).
  static Result<WeightedPrefixFilterScheme> Create(
      double gamma, WeightFunction weights, const SetCollection& input,
      double min_weighted_size, const PrefixFilterParams& params = {});

  std::string Name() const override;

  void Generate(std::span<const ElementId> set,
                std::vector<Signature>* out) const override;

  /// Weighted-size interval index (exposed for tests).
  uint32_t IntervalIndex(double weighted_size) const;

 private:
  WeightedPrefixFilterScheme() = default;

  double gamma_ = 0;
  WeightFunction weights_;
  PrefixFilterParams params_;
  double base_size_ = 0;
  double growth_ = 0;
  std::unordered_map<ElementId, uint32_t> rank_;
};

}  // namespace ssjoin
