#include "baselines/probe_count.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "util/check.h"
#include "util/timer.h"

namespace ssjoin {

namespace {

using PostingsIndex = std::unordered_map<ElementId, std::vector<SetId>>;

// Per-size caches of the joinable-size range and the per-probe overlap
// threshold t = max(1, ceil(min required overlap)).
struct SizeCaches {
  std::vector<std::optional<SizeRange>> joinable;
  std::vector<uint32_t> threshold;  // 0 encodes "joins nothing"

  SizeCaches(const Predicate& predicate, uint32_t max_size) {
    joinable.resize(max_size + 1);
    threshold.resize(max_size + 1, 0);
    for (uint32_t size = 0; size <= max_size; ++size) {
      joinable[size] = predicate.JoinableSizes(size, max_size);
      double t = MinRequiredOverlapForSize(predicate, size, max_size);
      if (std::isinf(t)) continue;
      threshold[size] = static_cast<uint32_t>(
          std::max(1.0, std::ceil(t - 1e-9)));
    }
  }
};

bool SizeCompatible(const SizeCaches& caches, bool enabled, uint32_t probe,
                    uint32_t partner) {
  if (!enabled) return true;
  const std::optional<SizeRange>& range = caches.joinable[probe];
  return range && range->Contains(partner);
}

}  // namespace

JoinResult PairCountSelfJoin(const SetCollection& input,
                             const Predicate& predicate,
                             const InvertedIndexJoinOptions& options) {
  JoinResult result;
  PhaseTimer timer;
  SizeCaches caches(predicate, input.max_set_size());

  PostingsIndex index;
  std::unordered_map<SetId, uint32_t> counter;
  for (SetId s = 0; s < input.size(); ++s) {
    std::span<const ElementId> probe = input.set(s);
    {
      auto scope = timer.Measure(kPhaseCandPair);
      counter.clear();
      for (ElementId e : probe) {
        auto it = index.find(e);
        if (it == index.end()) continue;
        for (SetId r : it->second) ++counter[r];
      }
      result.stats.signature_collisions += [&] {
        uint64_t total = 0;
        for (const auto& [_, c] : counter) total += c;
        return total;
      }();
      result.stats.candidates += counter.size();
    }
    {
      auto scope = timer.Measure(kPhasePostFilter);
      for (const auto& [r, count] : counter) {
        SSJOIN_DCHECK(count <= probe.size() && count <= input.set_size(r),
                      "overlap count {} exceeds set sizes ({}, {})", count,
                      probe.size(), input.set_size(r));
        if (!SizeCompatible(caches, options.size_filter,
                            static_cast<uint32_t>(probe.size()),
                            input.set_size(r))) {
          ++result.stats.false_positives;
          continue;
        }
        if (predicate.Matches(input.set_size(r),
                              static_cast<uint32_t>(probe.size()), count)) {
          result.pairs.emplace_back(r, s);
          ++result.stats.results;
        } else {
          ++result.stats.false_positives;
        }
      }
    }
    {
      // Index construction interleaves with probing; account it as the
      // signature-generation phase (identity signatures = the elements).
      auto scope = timer.Measure(kPhaseSigGen);
      for (ElementId e : probe) index[e].push_back(s);
      result.stats.signatures_r += probe.size();
    }
  }
  result.stats.signatures_s = result.stats.signatures_r;
  std::sort(result.pairs.begin(), result.pairs.end());
  result.stats.siggen_seconds = timer.Seconds(kPhaseSigGen);
  result.stats.candpair_seconds = timer.Seconds(kPhaseCandPair);
  result.stats.postfilter_seconds = timer.Seconds(kPhasePostFilter);
  return result;
}

JoinResult ProbeCountSelfJoin(const SetCollection& input,
                              const Predicate& predicate,
                              const InvertedIndexJoinOptions& options) {
  JoinResult result;
  PhaseTimer timer;
  SizeCaches caches(predicate, input.max_set_size());

  PostingsIndex index;
  std::unordered_map<SetId, uint32_t> counter;
  for (SetId s = 0; s < input.size(); ++s) {
    std::span<const ElementId> probe = input.set(s);
    uint32_t probe_size = static_cast<uint32_t>(probe.size());
    uint32_t t = probe_size < caches.threshold.size()
                     ? caches.threshold[probe_size]
                     : 0;
    if (t > 0) {
      // Gather this probe's postings lists, shortest-first; the t-1
      // longest lists are only binary-searched (MergeOpt of [22]).
      std::vector<const std::vector<SetId>*> lists;
      size_t num_short = 0;
      bool feasible = false;
      {
        auto scope = timer.Measure(kPhaseCandPair);
        lists.reserve(probe.size());
        for (ElementId e : probe) {
          auto it = index.find(e);
          if (it != index.end() && !it->second.empty()) {
            lists.push_back(&it->second);
          }
        }
        // lists.size() < t: no earlier set can reach the threshold overlap.
        feasible = lists.size() >= t;
        if (feasible) {
          std::sort(lists.begin(), lists.end(),
                    [](const auto* a, const auto* b) {
                      return a->size() < b->size();
                    });
          num_short = lists.size() - (t - 1);
          counter.clear();
          for (size_t i = 0; i < num_short; ++i) {
            for (SetId r : *lists[i]) ++counter[r];
            result.stats.signature_collisions += lists[i]->size();
          }
          result.stats.candidates += counter.size();
        }
      }
      if (feasible) {
        auto post = timer.Measure(kPhasePostFilter);
        for (const auto& [r, count_short] : counter) {
          if (!SizeCompatible(caches, options.size_filter, probe_size,
                              input.set_size(r))) {
            ++result.stats.false_positives;
            continue;
          }
          uint32_t count = count_short;
          SSJOIN_DCHECK(count_short <= probe_size,
                        "short-list overlap {} exceeds probe size {}",
                        count_short, probe_size);
          for (size_t i = num_short; i < lists.size(); ++i) {
            count += std::binary_search(lists[i]->begin(), lists[i]->end(),
                                        r)
                         ? 1
                         : 0;
          }
          if (predicate.Matches(input.set_size(r), probe_size, count)) {
            result.pairs.emplace_back(r, s);
            ++result.stats.results;
          } else {
            ++result.stats.false_positives;
          }
        }
      }
    }
    {
      auto scope = timer.Measure(kPhaseSigGen);
      for (ElementId e : probe) index[e].push_back(s);
      result.stats.signatures_r += probe.size();
    }
  }
  result.stats.signatures_s = result.stats.signatures_r;
  std::sort(result.pairs.begin(), result.pairs.end());
  result.stats.siggen_seconds = timer.Seconds(kPhaseSigGen);
  result.stats.candpair_seconds = timer.Seconds(kPhaseCandPair);
  result.stats.postfilter_seconds = timer.Seconds(kPhasePostFilter);
  return result;
}

JoinResult PairCountJoin(const SetCollection& r, const SetCollection& s,
                         const Predicate& predicate,
                         const InvertedIndexJoinOptions& options) {
  JoinResult result;
  PhaseTimer timer;
  uint32_t max_size = std::max(r.max_set_size(), s.max_set_size());
  SizeCaches caches(predicate, max_size);

  PostingsIndex index;
  {
    auto scope = timer.Measure(kPhaseSigGen);
    for (SetId id = 0; id < r.size(); ++id) {
      for (ElementId e : r.set(id)) index[e].push_back(id);
      result.stats.signatures_r += r.set_size(id);
    }
  }

  std::unordered_map<SetId, uint32_t> counter;
  for (SetId sid = 0; sid < s.size(); ++sid) {
    std::span<const ElementId> probe = s.set(sid);
    {
      auto scope = timer.Measure(kPhaseCandPair);
      counter.clear();
      for (ElementId e : probe) {
        auto it = index.find(e);
        if (it == index.end()) continue;
        for (SetId rid : it->second) ++counter[rid];
      }
      for (const auto& [_, c] : counter) {
        result.stats.signature_collisions += c;
      }
      result.stats.candidates += counter.size();
      result.stats.signatures_s += probe.size();
    }
    {
      auto scope = timer.Measure(kPhasePostFilter);
      for (const auto& [rid, count] : counter) {
        SSJOIN_DCHECK(count <= probe.size() && count <= r.set_size(rid),
                      "overlap count {} exceeds set sizes ({}, {})", count,
                      probe.size(), r.set_size(rid));
        if (!SizeCompatible(caches, options.size_filter,
                            static_cast<uint32_t>(probe.size()),
                            r.set_size(rid))) {
          ++result.stats.false_positives;
          continue;
        }
        if (predicate.Matches(r.set_size(rid),
                              static_cast<uint32_t>(probe.size()), count)) {
          result.pairs.emplace_back(rid, sid);
          ++result.stats.results;
        } else {
          ++result.stats.false_positives;
        }
      }
    }
  }
  std::sort(result.pairs.begin(), result.pairs.end());
  result.stats.siggen_seconds = timer.Seconds(kPhaseSigGen);
  result.stats.candpair_seconds = timer.Seconds(kPhaseCandPair);
  result.stats.postfilter_seconds = timer.Seconds(kPhasePostFilter);
  return result;
}

}  // namespace ssjoin
