#include "baselines/lsh.h"

#include <sstream>
#include <vector>

#include "util/check.h"
#include "util/hashing.h"

namespace ssjoin {

uint32_t LshParams::RequiredRepetitions(double gamma, double delta,
                                        uint32_t g) {
  SSJOIN_CHECK(gamma > 0.0 && gamma <= 1.0,
               "LSH similarity threshold out of (0,1] (got {})", gamma);
  SSJOIN_CHECK(delta > 0.0 && delta < 1.0,
               "LSH miss probability out of (0,1) (got {})", delta);
  SSJOIN_CHECK(g >= 1, "LSH needs at least one hash per group");
  double p = std::pow(gamma, g);  // per-repetition collision probability
  if (p >= 1.0) return 1;
  double l = std::log(delta) / std::log(1.0 - p);
  return static_cast<uint32_t>(std::max(1.0, std::ceil(l - 1e-12)));
}

LshParams LshParams::ForAccuracy(double gamma, double delta, uint32_t g,
                                 uint64_t seed) {
  LshParams params;
  params.g = g;
  params.l = RequiredRepetitions(gamma, delta, g);
  params.seed = seed;
  return params;
}

Result<LshScheme> LshScheme::Create(const LshParams& params) {
  if (params.g == 0) return Status::InvalidArgument("LSH: g must be >= 1");
  if (params.l == 0) return Status::InvalidArgument("LSH: l must be >= 1");
  if (static_cast<uint64_t>(params.g) * params.l > (1ULL << 20)) {
    return Status::InvalidArgument("LSH: g*l unreasonably large");
  }
  return LshScheme(params);
}

LshScheme::LshScheme(const LshParams& params)
    : params_(params),
      hasher_(std::make_unique<MinHasher>(params.g * params.l, params.seed)) {
}

std::string LshScheme::Name() const {
  std::ostringstream os;
  os << "LSH(g=" << params_.g << ",l=" << params_.l << ")";
  return os.str();
}

void LshScheme::Generate(std::span<const ElementId> set,
                         std::vector<Signature>* out) const {
  out->reserve(out->size() + params_.l);
  for (uint32_t rep = 0; rep < params_.l; ++rep) {
    // Signature = hash of (repetition index, g concatenated minhashes).
    SequenceHasher hasher(params_.seed);
    hasher.Add(rep);
    for (uint32_t i = 0; i < params_.g; ++i) {
      hasher.Add(hasher_->MinHash(set, rep * params_.g + i));
    }
    out->push_back(hasher.Finish());
  }
}

Result<WeightedLshScheme> WeightedLshScheme::Create(const LshParams& params,
                                                    WeightFunction weights) {
  if (params.g == 0) return Status::InvalidArgument("LSH: g must be >= 1");
  if (params.l == 0) return Status::InvalidArgument("LSH: l must be >= 1");
  if (!weights) {
    return Status::InvalidArgument("WeightedLSH: weight function is null");
  }
  return WeightedLshScheme(params, std::move(weights));
}

WeightedLshScheme::WeightedLshScheme(const LshParams& params,
                                     WeightFunction weights)
    : params_(params),
      weights_(std::move(weights)),
      hasher_(std::make_unique<WeightedMinHasher>(params.g * params.l,
                                                  params.seed)) {}

std::string WeightedLshScheme::Name() const {
  std::ostringstream os;
  os << "WLSH(g=" << params_.g << ",l=" << params_.l << ")";
  return os.str();
}

void WeightedLshScheme::Generate(std::span<const ElementId> set,
                                 std::vector<Signature>* out) const {
  std::vector<double> weights(set.size());
  for (size_t i = 0; i < set.size(); ++i) weights[i] = weights_(set[i]);
  out->reserve(out->size() + params_.l);
  for (uint32_t rep = 0; rep < params_.l; ++rep) {
    SequenceHasher hasher(params_.seed);
    hasher.Add(rep);
    for (uint32_t i = 0; i < params_.g; ++i) {
      hasher.Add(hasher_->MinHash(set, weights, rep * params_.g + i));
    }
    out->push_back(hasher.Finish());
  }
}

}  // namespace ssjoin
